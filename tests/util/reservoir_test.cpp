#include "util/reservoir.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace whisk::util {
namespace {

TEST(ReservoirTest, ExactWhileStreamFits) {
  Reservoir r(8);
  for (int i = 0; i < 8; ++i) r.add(static_cast<double>(i));
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.seen(), 8u);
  EXPECT_EQ(r.size(), 8u);
  // Arrival order preserved: the sample *is* the stream.
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(r.samples()[static_cast<std::size_t>(i)],
                     static_cast<double>(i));
  }
}

TEST(ReservoirTest, BoundedBeyondCapacity) {
  Reservoir r(16);
  for (int i = 0; i < 10000; ++i) r.add(static_cast<double>(i));
  EXPECT_FALSE(r.exact());
  EXPECT_EQ(r.seen(), 10000u);
  EXPECT_EQ(r.size(), 16u);
}

TEST(ReservoirTest, DeterministicForAGivenSeed) {
  Reservoir a(32, 7);
  Reservoir b(32, 7);
  for (int i = 0; i < 5000; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(i));
  }
  EXPECT_EQ(a.samples(), b.samples());

  Reservoir c(32, 8);
  for (int i = 0; i < 5000; ++i) c.add(static_cast<double>(i));
  EXPECT_NE(a.samples(), c.samples()) << "different seeds, different sample";
}

TEST(ReservoirTest, SampleQuantilesTrackTheStream) {
  // A uniform 0..1 ramp: the sampled median must land near 0.5. The sample
  // is deterministic, so the tolerance cannot flake.
  Reservoir r(512);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    r.add(static_cast<double>(i) / static_cast<double>(n));
  }
  const double p50 = percentile(r.samples(), 50.0);
  EXPECT_NEAR(p50, 0.5, 0.1);
}

TEST(ReservoirTest, MergeOfExactReservoirsConcatenates) {
  Reservoir a(16);
  Reservoir b(16);
  for (int i = 0; i < 4; ++i) a.add(static_cast<double>(i));
  for (int i = 4; i < 8; ++i) b.add(static_cast<double>(i));
  a.merge(b);
  EXPECT_TRUE(a.exact());
  EXPECT_EQ(a.seen(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[static_cast<std::size_t>(i)],
                     static_cast<double>(i));
  }
}

TEST(ReservoirTest, MergeThinsToCapacity) {
  Reservoir a(8);
  Reservoir b(8);
  for (int i = 0; i < 8; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(100 + i));
  }
  a.merge(b);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a.seen(), 16u);
  EXPECT_FALSE(a.exact());
}

TEST(StreamingStatsMerge, MatchesOneBigAccumulator) {
  StreamingStats all;
  StreamingStats left;
  StreamingStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i * i % 37) - 11.0;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.stddev(), all.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StreamingStatsMerge, EmptySidesAreIdentity) {
  StreamingStats empty;
  StreamingStats some;
  some.add(1.0);
  some.add(3.0);
  StreamingStats a = some;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  StreamingStats b = empty;
  b.merge(some);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 3.0);
}

}  // namespace
}  // namespace whisk::util
