#include "util/ring_buffer.h"

#include <gtest/gtest.h>

#include <numeric>

namespace whisk::util {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, FillsUpToCapacity) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 2u);
  rb.push(3);
  EXPECT_EQ(rb.size(), 3u);
  rb.push(4);
  EXPECT_EQ(rb.size(), 3u) << "size never exceeds capacity";
}

TEST(RingBuffer, KeepsMostRecentValues) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 10; ++i) rb.push(i);
  const auto& vals = rb.values();
  int sum = std::accumulate(vals.begin(), vals.end(), 0);
  // The retained window must be {8, 9, 10}.
  EXPECT_EQ(sum, 27);
}

TEST(RingBuffer, NewestTracksLastPush) {
  RingBuffer<int> rb(3);
  rb.push(1);
  EXPECT_EQ(rb.newest(), 1);
  rb.push(2);
  EXPECT_EQ(rb.newest(), 2);
  for (int i = 3; i <= 8; ++i) {
    rb.push(i);
    EXPECT_EQ(rb.newest(), i);
  }
}

TEST(RingBuffer, CapacityOneKeepsOnlyLast) {
  RingBuffer<double> rb(1);
  rb.push(1.0);
  rb.push(2.5);
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_DOUBLE_EQ(rb.values().front(), 2.5);
  EXPECT_DOUBLE_EQ(rb.newest(), 2.5);
}

TEST(RingBuffer, PushReturnsNothingWhileFilling) {
  RingBuffer<int> rb(3);
  EXPECT_FALSE(rb.push(1).has_value());
  EXPECT_FALSE(rb.push(2).has_value());
  EXPECT_FALSE(rb.push(3).has_value());
}

TEST(RingBuffer, PushReturnsEvictedOldest) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  // Full: each further push evicts the oldest retained value, in order.
  auto e4 = rb.push(4);
  ASSERT_TRUE(e4.has_value());
  EXPECT_EQ(*e4, 1);
  auto e5 = rb.push(5);
  ASSERT_TRUE(e5.has_value());
  EXPECT_EQ(*e5, 2);
  auto e6 = rb.push(6);
  ASSERT_TRUE(e6.has_value());
  EXPECT_EQ(*e6, 3);
  auto e7 = rb.push(7);
  ASSERT_TRUE(e7.has_value());
  EXPECT_EQ(*e7, 4) << "eviction follows the wrap-around";
}

TEST(RingBuffer, PushEvictionWithCapacityOne) {
  RingBuffer<double> rb(1);
  EXPECT_FALSE(rb.push(1.5).has_value());
  auto e = rb.push(2.5);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(*e, 1.5);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb.newest(), 9);
}

// The paper's runtime history keeps the last <= 10 samples; the average of
// a ring buffer window must equal the average of the trailing slice.
class RingWindowAverage : public ::testing::TestWithParam<int> {};

TEST_P(RingWindowAverage, MatchesTrailingSlice) {
  const int n = GetParam();
  RingBuffer<double> rb(10);
  std::vector<double> all;
  for (int i = 0; i < n; ++i) {
    const double v = 0.5 * i + 1.0;
    rb.push(v);
    all.push_back(v);
  }
  double expected = 0.0;
  const int start = std::max(0, n - 10);
  for (int i = start; i < n; ++i) expected += all[static_cast<size_t>(i)];
  expected /= std::max(1, n - start);

  double got = 0.0;
  for (double v : rb.values()) got += v;
  got /= static_cast<double>(rb.size() ? rb.size() : 1);
  EXPECT_NEAR(got, expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Lengths, RingWindowAverage,
                         ::testing::Values(1, 5, 10, 11, 25, 100));

}  // namespace
}  // namespace whisk::util
