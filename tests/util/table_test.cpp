#include "util/table.h"

#include <gtest/gtest.h>

namespace whisk::util {
namespace {

TEST(Table, RendersHeaderAndRule) {
  Table t({"a", "bb"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CountsRowsAndCols) {
  Table t({"x", "y", "z"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"col"});
  t.add_row({"wide-value"});
  t.add_row({"x"});
  const std::string out = t.to_string();
  // Every line must have the same length (fixed layout).
  std::size_t expected = 0;
  std::size_t start = 0;
  bool first = true;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (first) {
      expected = len;
      first = false;
    } else {
      EXPECT_EQ(len, expected);
    }
    start = end + 1;
  }
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Table, FmtRange) {
  EXPECT_EQ(fmt_range(0.59, 0.66), "0.59-0.66");
  EXPECT_EQ(fmt_range(1.0, 2.0, 1), "1.0-2.0");
}

}  // namespace
}  // namespace whisk::util
