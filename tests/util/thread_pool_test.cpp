#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace whisk::util {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    constexpr std::size_t kTasks = 200;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) h = 0;
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.submit([&hits, i] { hits[i]++; });
    }
    pool.wait_idle();
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " on " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversTheRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h = 0;
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, PoolIsReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count++; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50 * (round + 1));
  }
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&pool, &count] {
    count++;
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count++; });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count++; });
    }
    // No wait_idle: the destructor must still run everything queued.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SingleWorkerRunsInSubmissionOrder) {
  // Oldest-first own-queue draining: run_campaign's streaming pipeline
  // relies on execution tracking submission order so the in-index-order
  // flush buffer stays O(threads) instead of O(all cells).
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPoolDeath, RejectsZeroWorkers) {
  EXPECT_DEATH(ThreadPool pool(0), "at least one worker");
}

}  // namespace
}  // namespace whisk::util
