#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <set>

#include "workload/scenario_registry.h"

namespace whisk::cluster {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : catalog_(workload::sebs_catalog()) {}

  // A scenario from the registry surface, sized for `cores` on one node.
  workload::Scenario burst(const std::string& spec, std::uint64_t seed,
                           int cores = 10) {
    workload::ScenarioContext ctx;
    ctx.catalog = &catalog_;
    ctx.cores = cores;
    sim::Rng rng(seed);
    return workload::make_scenario(spec, ctx, rng);
  }

  workload::FunctionCatalog catalog_;
};

TEST_F(ClusterTest, CompletesEveryCall) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  Cluster cluster(engine, catalog_, params, 1);
  cluster.warmup();
  const auto scenario = burst("uniform?intensity=30", 1, /*cores=*/5);
  cluster.run_scenario(scenario);
  engine.run();
  EXPECT_EQ(cluster.collector().size(), scenario.size());
  EXPECT_EQ(cluster.total_stats().calls_completed, scenario.size());
}

TEST_F(ClusterTest, ResponseIncludesNetworkPath) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 2;
  params.client_to_controller_s = 0.002;
  params.controller_to_invoker_s = 0.003;
  params.response_return_s = 0.004;
  Cluster cluster(engine, catalog_, params, 1);
  cluster.warmup();
  workload::Scenario s;
  s.calls.push_back(
      workload::CallRequest{0, *catalog_.find("graph-bfs"), 0.0});
  cluster.run_scenario(s);
  engine.run();
  const auto& rec = cluster.collector().records().at(0);
  // r'(i) = release + client->controller + controller->invoker.
  EXPECT_NEAR(rec.received - rec.release, 0.005, 1e-9);
  // c(i) >= exec_end + return path.
  EXPECT_GE(rec.completion - rec.exec_end, 0.004 - 1e-9);
}

TEST_F(ClusterTest, IdleResponseMatchesTableOneOverhead) {
  // On an idle warmed node the end-to-end overhead on top of the service
  // time is ~10 ms (the paper's Table I note).
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 4;
  Cluster cluster(engine, catalog_, params, 3);
  cluster.warmup();
  workload::Scenario s;
  s.calls.push_back(
      workload::CallRequest{0, *catalog_.find("graph-bfs"), 0.0});
  cluster.run_scenario(s);
  engine.run();
  const auto& rec = cluster.collector().records().at(0);
  const double overhead = rec.response() - rec.service;
  EXPECT_GT(overhead, 0.005);
  EXPECT_LT(overhead, 0.05);
}

TEST_F(ClusterTest, MultiNodeSpreadsCalls) {
  sim::Engine engine;
  ClusterParams params;
  params.num_nodes = 4;
  params.node.cores = 5;
  params.balancer = "round-robin";
  Cluster cluster(engine, catalog_, params, 2);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=220", 2);
  cluster.run_scenario(scenario);
  engine.run();
  std::set<int> nodes;
  for (const auto& rec : cluster.collector().records()) {
    nodes.insert(rec.node);
  }
  EXPECT_EQ(nodes.size(), 4u) << "round-robin uses every worker";
  EXPECT_EQ(cluster.num_nodes(), 4u);
}

TEST_F(ClusterTest, RoundRobinBalancesEvenly) {
  sim::Engine engine;
  ClusterParams params;
  params.num_nodes = 2;
  params.node.cores = 5;
  Cluster cluster(engine, catalog_, params, 2);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=200", 3);
  cluster.run_scenario(scenario);
  engine.run();
  int node0 = 0;
  for (const auto& rec : cluster.collector().records()) {
    if (rec.node == 0) ++node0;
  }
  EXPECT_EQ(node0, 100);
}

TEST_F(ClusterTest, BaselineApproachUsesBaselineInvoker) {
  sim::Engine engine;
  ClusterParams params;
  params.invoker = "baseline";
  Cluster cluster(engine, catalog_, params, 1);
  EXPECT_EQ(cluster.invoker(0).approach(), "baseline");
}

TEST_F(ClusterTest, OurApproachUsesOurInvoker) {
  sim::Engine engine;
  ClusterParams params;
  params.invoker = "ours";
  params.policy = "sept";
  Cluster cluster(engine, catalog_, params, 1);
  EXPECT_EQ(cluster.invoker(0).approach(), "our");
}

TEST_F(ClusterTest, DeterministicAcrossRuns) {
  auto run_once = [&](std::uint64_t seed) {
    sim::Engine engine;
    ClusterParams params;
    params.node.cores = 5;
    Cluster cluster(engine, catalog_, params, seed);
    cluster.warmup();
    const auto scenario = burst("uniform?intensity=30", seed, /*cores=*/5);
    cluster.run_scenario(scenario);
    engine.run();
    double sum = 0.0;
    for (double r : cluster.collector().response_times()) sum += r;
    return sum;
  };
  EXPECT_DOUBLE_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST_F(ClusterTest, TotalStatsAggregateAcrossNodes) {
  sim::Engine engine;
  ClusterParams params;
  params.num_nodes = 3;
  params.node.cores = 5;
  Cluster cluster(engine, catalog_, params, 4);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=330", 4);
  cluster.run_scenario(scenario);
  engine.run();
  const auto stats = cluster.total_stats();
  EXPECT_EQ(stats.calls_received, 330u);
  EXPECT_EQ(stats.calls_completed, 330u);
  EXPECT_EQ(stats.warm_starts + stats.prewarm_starts + stats.cold_starts,
            330u);
}

}  // namespace
}  // namespace whisk::cluster
