#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "experiments/runner.h"
#include "metrics/csv.h"
#include "workload/scenario_registry.h"

namespace whisk::cluster {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : catalog_(workload::sebs_catalog()) {}

  // A scenario from the registry surface, sized for `cores` on one node.
  workload::Scenario burst(const std::string& spec, std::uint64_t seed,
                           int cores = 10) {
    workload::ScenarioContext ctx;
    ctx.catalog = &catalog_;
    ctx.cores = cores;
    sim::Rng rng(seed);
    return workload::make_scenario(spec, ctx, rng);
  }

  workload::FunctionCatalog catalog_;
};

TEST_F(ClusterTest, CompletesEveryCall) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  Cluster cluster(engine, catalog_, params, 1);
  cluster.warmup();
  const auto scenario = burst("uniform?intensity=30", 1, /*cores=*/5);
  cluster.run_scenario(scenario);
  engine.run();
  EXPECT_EQ(cluster.collector().size(), scenario.size());
  EXPECT_EQ(cluster.total_stats().calls_completed, scenario.size());
}

TEST_F(ClusterTest, ResponseIncludesNetworkPath) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 2;
  params.client_to_controller_s = 0.002;
  params.controller_to_invoker_s = 0.003;
  params.response_return_s = 0.004;
  Cluster cluster(engine, catalog_, params, 1);
  cluster.warmup();
  workload::Scenario s;
  s.calls.push_back(
      workload::CallRequest{0, *catalog_.find("graph-bfs"), 0.0});
  cluster.run_scenario(s);
  engine.run();
  const auto rec = cluster.collector().record(0);
  // r'(i) = release + client->controller + controller->invoker.
  EXPECT_NEAR(rec.received - rec.release, 0.005, 1e-9);
  // c(i) >= exec_end + return path.
  EXPECT_GE(rec.completion - rec.exec_end, 0.004 - 1e-9);
}

TEST_F(ClusterTest, IdleResponseMatchesTableOneOverhead) {
  // On an idle warmed node the end-to-end overhead on top of the service
  // time is ~10 ms (the paper's Table I note).
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 4;
  Cluster cluster(engine, catalog_, params, 3);
  cluster.warmup();
  workload::Scenario s;
  s.calls.push_back(
      workload::CallRequest{0, *catalog_.find("graph-bfs"), 0.0});
  cluster.run_scenario(s);
  engine.run();
  const auto rec = cluster.collector().record(0);
  const double overhead = rec.response() - rec.service;
  EXPECT_GT(overhead, 0.005);
  EXPECT_LT(overhead, 0.05);
}

TEST_F(ClusterTest, MultiNodeSpreadsCalls) {
  sim::Engine engine;
  ClusterParams params;
  params.deployment = ClusterSpec::homogeneous(4);
  params.node.cores = 5;
  params.balancer = "round-robin";
  Cluster cluster(engine, catalog_, params, 2);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=220", 2);
  cluster.run_scenario(scenario);
  engine.run();
  std::set<int> nodes;
  for (const auto& rec : cluster.collector().records()) {
    nodes.insert(rec.node);
  }
  EXPECT_EQ(nodes.size(), 4u) << "round-robin uses every worker";
  EXPECT_EQ(cluster.num_nodes(), 4u);
}

TEST_F(ClusterTest, RoundRobinBalancesEvenly) {
  sim::Engine engine;
  ClusterParams params;
  params.deployment = ClusterSpec::homogeneous(2);
  params.node.cores = 5;
  Cluster cluster(engine, catalog_, params, 2);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=200", 3);
  cluster.run_scenario(scenario);
  engine.run();
  int node0 = 0;
  for (const auto& rec : cluster.collector().records()) {
    if (rec.node == 0) ++node0;
  }
  EXPECT_EQ(node0, 100);
}

TEST_F(ClusterTest, BaselineApproachUsesBaselineInvoker) {
  sim::Engine engine;
  ClusterParams params;
  params.invoker = "baseline";
  Cluster cluster(engine, catalog_, params, 1);
  EXPECT_EQ(cluster.invoker(0).approach(), "baseline");
}

TEST_F(ClusterTest, OurApproachUsesOurInvoker) {
  sim::Engine engine;
  ClusterParams params;
  params.invoker = "ours";
  params.policy = "sept";
  Cluster cluster(engine, catalog_, params, 1);
  EXPECT_EQ(cluster.invoker(0).approach(), "our");
}

TEST_F(ClusterTest, DeterministicAcrossRuns) {
  auto run_once = [&](std::uint64_t seed) {
    sim::Engine engine;
    ClusterParams params;
    params.node.cores = 5;
    Cluster cluster(engine, catalog_, params, seed);
    cluster.warmup();
    const auto scenario = burst("uniform?intensity=30", seed, /*cores=*/5);
    cluster.run_scenario(scenario);
    engine.run();
    double sum = 0.0;
    for (double r : cluster.collector().response_times()) sum += r;
    return sum;
  };
  EXPECT_DOUBLE_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST_F(ClusterTest, TotalStatsAggregateAcrossNodes) {
  sim::Engine engine;
  ClusterParams params;
  params.deployment = ClusterSpec::homogeneous(3);
  params.node.cores = 5;
  Cluster cluster(engine, catalog_, params, 4);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=330", 4);
  cluster.run_scenario(scenario);
  engine.run();
  const auto stats = cluster.total_stats();
  EXPECT_EQ(stats.calls_received, 330u);
  EXPECT_EQ(stats.calls_completed, 330u);
  EXPECT_EQ(stats.warm_starts + stats.prewarm_starts + stats.cold_starts,
            330u);
}

TEST_F(ClusterTest, LegacySugarEqualsExplicitOneGroupSpec) {
  // The byte-pin behind the refactor: .nodes(n) is sugar for a one-group
  // ClusterSpec, so both spellings must produce the identical record CSV.
  auto run_csv = [&](bool explicit_cluster) {
    auto spec = experiments::ExperimentSpec()
                    .scheduler("ours/sept")
                    .scenario("fixed-total?total=120")
                    .cores(5)
                    .seed(3);
    if (explicit_cluster) {
      spec.cluster("node:2");
    } else {
      spec.nodes(2);
    }
    const auto result = experiments::run_experiment(spec, catalog_);
    return metrics::to_csv(result.records, catalog_);
  };
  EXPECT_EQ(run_csv(false), run_csv(true));
}

TEST_F(ClusterTest, HeterogeneousFleetRoutesByCapacity) {
  sim::Engine engine;
  ClusterParams params;
  params.balancer = "weighted-least-loaded";
  params.node.cores = 4;
  params.deployment = ClusterSpec::parse("big:1?cores=16,small:1?cores=4");
  Cluster cluster(engine, catalog_, params, 5);
  cluster.warmup();
  // A 10 s window keeps a standing backlog, so the capacity weighting (not
  // the idle tie-break) decides most picks.
  const auto scenario = burst("fixed-total?total=400&window=10", 5);
  cluster.run_scenario(scenario);
  engine.run();
  EXPECT_EQ(cluster.collector().size(), scenario.size());
  EXPECT_EQ(cluster.invoker(0).params().cores, 16);
  EXPECT_EQ(cluster.invoker(1).params().cores, 4);
  EXPECT_EQ(cluster.node_group(0), 0u);
  EXPECT_EQ(cluster.node_group(1), 1u);
  std::map<int, int> calls_per_node;
  for (const auto& rec : cluster.collector().records()) {
    ++calls_per_node[rec.node];
  }
  EXPECT_GT(calls_per_node[0], 2 * calls_per_node[1])
      << "the 16-core box should absorb most of the load";
  const auto groups = cluster.group_stats();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].name, "big");
  EXPECT_EQ(static_cast<int>(groups[0].stats.calls_completed),
            calls_per_node[0]);
}

TEST_F(ClusterTest, DrainedNodeStopsReceivingButFinishesItsBacklog) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.deployment =
      ClusterSpec::parse("node:2; events=drain@5:node/1");
  Cluster cluster(engine, catalog_, params, 2);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=200", 2);
  cluster.run_scenario(scenario);
  engine.run();
  EXPECT_EQ(cluster.collector().size(), scenario.size())
      << "every call completes, including those queued on the drained node";
  // No call released after the drain (plus the network hop) may land on
  // node 1.
  for (const auto& rec : cluster.collector().records()) {
    if (rec.release > 5.0) {
      EXPECT_EQ(rec.node, 0) << "call " << rec.id
                             << " routed to a draining node";
    }
  }
  EXPECT_EQ(cluster.node_state(1), NodeState::kDrained);
  EXPECT_EQ(cluster.routable_nodes(), 1u);
  EXPECT_EQ(cluster.resubmissions(), 0u);
}

TEST_F(ClusterTest, JoinedNodeStartsColdAndReceivesCalls) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.deployment = ClusterSpec::parse("node:1; events=join@10:node");
  Cluster cluster(engine, catalog_, params, 3);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=200", 3);
  cluster.run_scenario(scenario);
  engine.run();
  EXPECT_EQ(cluster.collector().size(), scenario.size());
  EXPECT_EQ(cluster.num_nodes(), 2u);
  EXPECT_EQ(cluster.routable_nodes(), 2u);
  std::size_t on_joined = 0;
  for (const auto& rec : cluster.collector().records()) {
    if (rec.node == 1) {
      ++on_joined;
      EXPECT_GT(rec.received, 10.0) << "no call before the join";
    }
  }
  EXPECT_GT(on_joined, 0u) << "the joined node takes traffic";
  EXPECT_GT(cluster.invoker(1).stats().cold_starts, 0u)
      << "a joined node is cold: its first calls create containers";
  EXPECT_EQ(cluster.invoker(0).stats().cold_starts, 0u)
      << "the warmed node never cold-starts in this load";
}

TEST_F(ClusterTest, FailedNodeCallsAreResubmittedAndAccounted) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.deployment = ClusterSpec::parse("node:2; events=fail@5:node/1");
  Cluster cluster(engine, catalog_, params, 4);
  cluster.warmup();
  // 20 calls/s guarantees node 1 holds in-flight work when it dies at t=5.
  const auto scenario = burst("fixed-total?total=200&window=10", 4);
  cluster.run_scenario(scenario);
  engine.run();
  // Every call still completes exactly once; the interrupted ones needed a
  // second submission.
  EXPECT_EQ(cluster.collector().size(), scenario.size());
  EXPECT_GT(cluster.resubmissions(), 0u)
      << "a mid-burst failure must interrupt something";
  EXPECT_EQ(cluster.node_state(1), NodeState::kFailed);
  EXPECT_EQ(cluster.routable_nodes(), 1u);
  const auto& col = cluster.collector();
  EXPECT_EQ(col.resubmissions(), cluster.resubmissions())
      << "the collector accounts every re-submission";
  EXPECT_GT(col.resubmitted_calls(), 0u);
  std::size_t attempts_above_one = 0;
  for (const auto& rec : col.records()) {
    if (rec.attempts > 1) {
      ++attempts_above_one;
      EXPECT_EQ(rec.node, 0) << "the retry completed on the survivor";
    }
  }
  EXPECT_EQ(attempts_above_one, col.resubmitted_calls());
  const auto stats = cluster.total_stats();
  EXPECT_EQ(stats.calls_lost, cluster.invoker(1).stats().calls_lost);
  EXPECT_EQ(stats.calls_completed, scenario.size());
}

TEST_F(ClusterTest, DaemonQueueWaitSurfacesInStats) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  Cluster cluster(engine, catalog_, params, 1);
  cluster.warmup();
  const auto scenario = burst("uniform?intensity=30", 1, /*cores=*/5);
  cluster.run_scenario(scenario);
  engine.run();
  const auto stats = cluster.total_stats();
  EXPECT_GT(stats.daemon_busy_seconds, 0.0);
  EXPECT_GT(stats.daemon_queue_wait_seconds, 0.0)
      << "a 30-intensity burst contends on the daemon";
  EXPECT_GT(stats.daemon_max_queue_wait_seconds, 0.0);
  EXPECT_GE(stats.daemon_queue_wait_seconds,
            stats.daemon_max_queue_wait_seconds);
}

TEST(ClusterDeath, AllNodesGoneAborts) {
  const auto catalog = workload::sebs_catalog();
  sim::Engine engine;
  ClusterParams params;
  params.deployment = ClusterSpec::parse("node:1; events=drain@0.5:node/0");
  Cluster cluster(engine, catalog, params, 1);
  cluster.warmup();
  workload::Scenario s;
  s.calls.push_back(workload::CallRequest{0, 0, 1.0});
  cluster.run_scenario(s);
  EXPECT_DEATH(engine.run(), "no routable nodes");
}

}  // namespace
}  // namespace whisk::cluster
