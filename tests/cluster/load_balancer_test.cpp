#include "cluster/load_balancer.h"

#include <gtest/gtest.h>

#include "node/our_invoker.h"
#include "sim/engine.h"

namespace whisk::cluster {
namespace {

// A small fixture that builds real invokers (the balancer interface takes
// Invoker*), optionally loading some of them with calls.
class BalancerTest : public ::testing::Test {
 protected:
  BalancerTest() : catalog_(workload::sebs_catalog()) {
    for (int i = 0; i < 4; ++i) {
      node::NodeParams p;
      p.cores = 2;
      invokers_.push_back(std::make_unique<node::OurInvoker>(
          engine_, catalog_, p, sim::Rng(i),
          [](const metrics::CallRecord&) {}, core::PolicyKind::kFifo));
      invokers_.back()->warmup();
      ptrs_.push_back(invokers_.back().get());
    }
  }

  void load_node(std::size_t idx, int calls) {
    const auto sleep = *catalog_.find("sleep");
    for (int k = 0; k < calls; ++k) {
      ptrs_[idx]->submit(workload::CallRequest{k, sleep, 0.0});
    }
  }

  workload::CallRequest call(workload::FunctionId fn = 0) const {
    return workload::CallRequest{0, fn, 0.0};
  }

  sim::Engine engine_;
  workload::FunctionCatalog catalog_;
  std::vector<std::unique_ptr<node::Invoker>> invokers_;
  std::vector<node::Invoker*> ptrs_;
};

TEST_F(BalancerTest, RoundRobinCycles) {
  auto b = make_balancer(BalancerKind::kRoundRobin);
  EXPECT_EQ(b->pick(call(), ptrs_), 0u);
  EXPECT_EQ(b->pick(call(), ptrs_), 1u);
  EXPECT_EQ(b->pick(call(), ptrs_), 2u);
  EXPECT_EQ(b->pick(call(), ptrs_), 3u);
  EXPECT_EQ(b->pick(call(), ptrs_), 0u);
}

TEST_F(BalancerTest, RoundRobinIgnoresFunction) {
  auto b = make_balancer(BalancerKind::kRoundRobin);
  EXPECT_EQ(b->pick(call(3), ptrs_), 0u);
  EXPECT_EQ(b->pick(call(3), ptrs_), 1u);
}

TEST_F(BalancerTest, HomeInvokerIsFunctionSticky) {
  auto b = make_balancer(BalancerKind::kHomeInvoker);
  const auto first = b->pick(call(5), ptrs_);
  const auto second = b->pick(call(5), ptrs_);
  EXPECT_EQ(first, second) << "same function lands on its home while idle";
  EXPECT_EQ(first, 5u % ptrs_.size());
}

TEST_F(BalancerTest, HomeInvokerOverflowsWhenHomeBusy) {
  auto b = make_balancer(BalancerKind::kHomeInvoker);
  const std::size_t home = 1u;  // function 5 % 4 == 1
  load_node(home, 10);          // well beyond 2 * cores
  const auto got = b->pick(call(5), ptrs_);
  EXPECT_NE(got, home);
}

TEST_F(BalancerTest, LeastLoadedPicksEmptiestNode) {
  auto b = make_balancer(BalancerKind::kLeastLoaded);
  load_node(0, 3);
  load_node(1, 1);
  load_node(2, 5);
  // Node 3 untouched.
  EXPECT_EQ(b->pick(call(), ptrs_), 3u);
}

TEST_F(BalancerTest, LeastLoadedBreaksTiesByIndex) {
  auto b = make_balancer(BalancerKind::kLeastLoaded);
  EXPECT_EQ(b->pick(call(), ptrs_), 0u);
}

TEST_F(BalancerTest, AllBalancersReturnValidIndices) {
  for (const auto kind :
       {BalancerKind::kRoundRobin, BalancerKind::kHomeInvoker,
        BalancerKind::kLeastLoaded}) {
    auto b = make_balancer(kind);
    for (int i = 0; i < 32; ++i) {
      const auto idx =
          b->pick(call(static_cast<workload::FunctionId>(i % 11)), ptrs_);
      ASSERT_LT(idx, ptrs_.size()) << to_string(kind);
    }
  }
}

TEST(BalancerNames, ToString) {
  EXPECT_EQ(to_string(BalancerKind::kRoundRobin), "round-robin");
  EXPECT_EQ(to_string(BalancerKind::kHomeInvoker), "home-invoker");
  EXPECT_EQ(to_string(BalancerKind::kLeastLoaded), "least-loaded");
}

}  // namespace
}  // namespace whisk::cluster
