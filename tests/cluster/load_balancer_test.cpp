#include "cluster/load_balancer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/balancer_registry.h"
#include "node/our_invoker.h"
#include "sim/engine.h"

namespace whisk::cluster {
namespace {

// A small fixture that builds real invokers and presents them to the
// balancers through the NodeView they see in production, optionally
// loading some of them with calls.
class BalancerTest : public ::testing::Test {
 protected:
  BalancerTest() : catalog_(workload::sebs_catalog()) {
    for (int i = 0; i < 4; ++i) {
      add_invoker(/*cores=*/2);
    }
  }

  void add_invoker(int cores, std::size_t group = 0) {
    node::NodeParams p;
    p.cores = cores;
    invokers_.push_back(std::make_unique<node::OurInvoker>(
        engine_, catalog_, p, sim::Rng(invokers_.size()),
        [](const metrics::CallRecord&) {}, "fifo"));
    invokers_.back()->warmup();
    refs_.push_back(NodeRef{invokers_.back().get(), refs_.size(), group});
  }

  void load_node(std::size_t idx, int calls) {
    const auto sleep = *catalog_.find("sleep");
    for (int k = 0; k < calls; ++k) {
      refs_[idx].invoker->submit(workload::CallRequest{k, sleep, 0.0});
    }
  }

  // The routable view, as the cluster layer hands it to pick().
  [[nodiscard]] NodeView view() const { return NodeView(refs_); }
  [[nodiscard]] std::size_t size() const { return refs_.size(); }

  workload::CallRequest call(workload::FunctionId fn = 0) const {
    return workload::CallRequest{0, fn, 0.0};
  }

  sim::Engine engine_;
  workload::FunctionCatalog catalog_;
  std::vector<std::unique_ptr<node::Invoker>> invokers_;
  std::vector<NodeRef> refs_;
};

TEST_F(BalancerTest, RoundRobinCycles) {
  auto b = make_balancer("round-robin");
  EXPECT_EQ(b->pick(call(), view()), 0u);
  EXPECT_EQ(b->pick(call(), view()), 1u);
  EXPECT_EQ(b->pick(call(), view()), 2u);
  EXPECT_EQ(b->pick(call(), view()), 3u);
  EXPECT_EQ(b->pick(call(), view()), 0u);
}

TEST_F(BalancerTest, RoundRobinIgnoresFunction) {
  auto b = make_balancer("round-robin");
  EXPECT_EQ(b->pick(call(3), view()), 0u);
  EXPECT_EQ(b->pick(call(3), view()), 1u);
}

TEST_F(BalancerTest, HomeInvokerIsFunctionSticky) {
  auto b = make_balancer("home-invoker");
  const auto first = b->pick(call(5), view());
  const auto second = b->pick(call(5), view());
  EXPECT_EQ(first, second) << "same function lands on its home while idle";
  EXPECT_EQ(first, 5u % size());
}

TEST_F(BalancerTest, HomeInvokerOverflowsWhenHomeBusy) {
  auto b = make_balancer("home-invoker");
  const std::size_t home = 1u;  // function 5 % 4 == 1
  load_node(home, 10);          // well beyond 2 * cores
  const auto got = b->pick(call(5), view());
  EXPECT_NE(got, home);
}

TEST_F(BalancerTest, LeastLoadedPicksEmptiestNode) {
  auto b = make_balancer("least-loaded");
  load_node(0, 3);
  load_node(1, 1);
  load_node(2, 5);
  // Node 3 untouched.
  EXPECT_EQ(b->pick(call(), view()), 3u);
}

TEST_F(BalancerTest, LeastLoadedBreaksTiesByIndex) {
  auto b = make_balancer("least-loaded");
  EXPECT_EQ(b->pick(call(), view()), 0u);
}

TEST_F(BalancerTest, WeightedLeastLoadedNormalizesByCores) {
  // A 16-core node with 4 in-flight calls (score 0.25) must beat the
  // 2-core nodes carrying 1-2 calls each (scores 0.5-1.0), even though its
  // raw backlog is the largest.
  add_invoker(/*cores=*/16);  // index 4
  load_node(0, 1);
  load_node(1, 2);
  load_node(2, 1);
  load_node(3, 2);
  load_node(4, 4);
  auto b = make_balancer("weighted-least-loaded");
  EXPECT_EQ(b->pick(call(), view()), 4u);
}

TEST_F(BalancerTest, WeightedLeastLoadedMatchesUnweightedOnUniformFleet) {
  auto b = make_balancer("weighted-least-loaded");
  load_node(0, 3);
  load_node(1, 1);
  load_node(2, 5);
  EXPECT_EQ(b->pick(call(), view()), 3u);
}

TEST_F(BalancerTest, JoinIdleQueuePrefersIdleInvokers) {
  auto b = make_balancer("join-idle-queue");
  load_node(0, 2);
  load_node(1, 1);
  load_node(3, 4);
  // Node 2 is the only idle one.
  EXPECT_EQ(b->pick(call(), view()), 2u);
}

TEST_F(BalancerTest, JoinIdleQueueRotatesOverIdleInvokers) {
  auto b = make_balancer("join-idle-queue");
  load_node(0, 2);
  // Nodes 1, 2, 3 idle: consecutive picks spread instead of hammering the
  // first idle node.
  EXPECT_EQ(b->pick(call(), view()), 1u);
  EXPECT_EQ(b->pick(call(), view()), 2u);
  EXPECT_EQ(b->pick(call(), view()), 3u);
}

TEST_F(BalancerTest, JoinIdleQueueFallsBackToLeastLoaded) {
  auto b = make_balancer("join-idle-queue");
  load_node(0, 3);
  load_node(1, 1);
  load_node(2, 5);
  load_node(3, 2);
  EXPECT_EQ(b->pick(call(), view()), 1u);
}

TEST_F(BalancerTest, JoinIdleQueueFallbackIsCapacityAware) {
  // Nobody idle: the fallback must normalize by cores, landing on the
  // 16-core box (4/16 = 0.25) over the less-backlogged 2-core ones.
  add_invoker(/*cores=*/16, /*group=*/1);  // index 4
  load_node(0, 1);
  load_node(1, 1);
  load_node(2, 1);
  load_node(3, 1);
  load_node(4, 4);
  auto b = make_balancer("join-idle-queue");
  EXPECT_EQ(b->pick(call(), view()), 4u);
}

TEST_F(BalancerTest, NodeViewExposesGroupAndCapacityIdentity) {
  add_invoker(/*cores=*/16, /*group=*/1);
  const NodeView v = view();
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0].group, 0u);
  EXPECT_EQ(v[4].group, 1u);
  EXPECT_EQ(v[4].node_index, 4u);
  EXPECT_EQ(v[4].cores(), 16);
  EXPECT_EQ(v[0].cores(), 2);
  EXPECT_EQ(v[0].load(), 0u);
}

TEST_F(BalancerTest, AllRegisteredBalancersReturnValidIndices) {
  for (const auto& name : BalancerRegistry::instance().names()) {
    auto b = make_balancer(name);
    for (int i = 0; i < 32; ++i) {
      const auto idx =
          b->pick(call(static_cast<workload::FunctionId>(i % 11)), view());
      ASSERT_LT(idx, size()) << name;
    }
  }
}

TEST(BalancerNames, EveryRegisteredNameConstructsAndEchoesItsName) {
  for (const auto& name : BalancerRegistry::instance().names()) {
    auto b = make_balancer(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(b->name(), name);
  }
}

TEST(BalancerNames, PaperAndNewBalancersAreRegistered) {
  const auto names = BalancerRegistry::instance().names();
  auto has = [&](std::string_view n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("round-robin"));
  EXPECT_TRUE(has("home-invoker"));
  EXPECT_TRUE(has("least-loaded"));
  EXPECT_TRUE(has("weighted-least-loaded"));
  EXPECT_TRUE(has("join-idle-queue"));
}

TEST(BalancerNames, LookupIsCaseInsensitiveAndAliased) {
  EXPECT_EQ(make_balancer("Round-Robin")->name(), "round-robin");
  EXPECT_EQ(make_balancer("JIQ")->name(), "join-idle-queue");
}

TEST(BalancerNamesDeath, UnknownNameEchoesInputAndListsNames) {
  EXPECT_DEATH((void)make_balancer("best-effort"),
               "unknown balancer \"best-effort\".*round-robin.*"
               "weighted-least-loaded.*join-idle-queue");
}

}  // namespace
}  // namespace whisk::cluster
