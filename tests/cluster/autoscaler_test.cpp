#include "cluster/autoscaler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/cluster.h"
#include "core/history.h"
#include "workload/scenario_registry.h"

namespace whisk::cluster {
namespace {

// ---------------------------------------------------------------------------
// AutoscalerSpec: grammar, round-trip, diagnostics.

TEST(AutoscalerSpec, DefaultIsNone) {
  const AutoscalerSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_EQ(spec.to_string(), "none");
  EXPECT_EQ(spec.normalized(), spec);
}

TEST(AutoscalerSpec, ParseToStringRoundTrips) {
  const char* texts[] = {
      "none",
      "target-util",
      "target-util?low=0.2&high=0.8",
      "queue-depth?high=6&cooldown-s=30",
      "predictive?window-s=20&target=0.6&tick-s=2",
  };
  for (const char* text : texts) {
    const auto spec = AutoscalerSpec::parse(text);
    EXPECT_EQ(AutoscalerSpec::parse(spec.to_string()), spec) << text;
    EXPECT_EQ(AutoscalerSpec::parse(spec.to_string()).to_string(),
              spec.to_string())
        << text;
  }
}

TEST(AutoscalerSpec, NamesAndKeysAreCaseInsensitive) {
  const auto spec = AutoscalerSpec::parse("Target-Util?LOW=0.2").normalized();
  EXPECT_EQ(spec.name, "target-util");
  EXPECT_TRUE(spec.has("low"));
  EXPECT_DOUBLE_EQ(spec.number("low", 0.0), 0.2);
}

TEST(AutoscalerSpec, AliasResolvesToCanonicalName) {
  EXPECT_EQ(AutoscalerSpec::parse("utilization").normalized().name,
            "target-util");
}

TEST(AutoscalerSpec, RegistryListsTheBuiltins) {
  const auto names = AutoscalerRegistry::instance().names();
  for (const char* want : {"predictive", "queue-depth", "target-util"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  }
}

TEST(AutoscalerSpecDeath, UnknownNameListsRegisteredOnes) {
  EXPECT_DEATH((void)AutoscalerSpec::parse("warp-scaler").normalized(),
               "unknown autoscaler \"warp-scaler\".*target-util");
}

TEST(AutoscalerSpecDeath, UnknownParameterListsValidKeys) {
  EXPECT_DEATH(
      (void)AutoscalerSpec::parse("target-util?warp=9").normalized(),
      "does not take parameter \"warp\".*tick-s.*low.*high");
}

TEST(AutoscalerSpecDeath, NoneTakesNoParameters) {
  EXPECT_DEATH((void)AutoscalerSpec::parse("none?low=1").normalized(), "");
}

TEST(AutoscalerSpecDeath, BadDriverValuesAbort) {
  EXPECT_DEATH(
      (void)AutoscalerSpec::parse("target-util?tick-s=0").normalized(),
      "tick-s");
  EXPECT_DEATH(
      (void)AutoscalerSpec::parse("target-util?cooldown-s=-1").normalized(),
      "cooldown-s");
}

TEST(AutoscalerSpecDeath, BadControllerValuesAbort) {
  EXPECT_DEATH(
      (void)AutoscalerSpec::parse("target-util?low=0.9&high=0.2").normalized(),
      "");
  EXPECT_DEATH(
      (void)AutoscalerSpec::parse("predictive?window-s=0").normalized(), "");
}

// ---------------------------------------------------------------------------
// Controller decisions on synthetic observations.

std::size_t decide(const char* spec_text, std::size_t active,
                   std::size_t queued, std::size_t executing,
                   int cores = 10) {
  const auto controller =
      make_autoscaler(AutoscalerSpec::parse(spec_text).normalized());
  GroupObservation group;
  group.active = active;
  group.cores_per_node = cores;
  group.queued = queued;
  group.executing = executing;
  ClusterObservation obs;
  obs.num_functions = 1;
  return controller->desired_nodes(group, obs);
}

TEST(TargetUtil, HoldsInsideTheBand) {
  // 5 of 10 cores busy on one node: utilization 0.5, inside [0.3, 0.85].
  EXPECT_EQ(decide("target-util", 1, 0, 5), 1u);
}

TEST(TargetUtil, GrowsOneStepAboveHigh) {
  // 12 calls on 10 cores: utilization 1.2 > 0.85.
  EXPECT_EQ(decide("target-util", 1, 2, 10), 2u);
  // One step per tick, no matter how far above the band.
  EXPECT_EQ(decide("target-util", 2, 40, 20), 3u);
}

TEST(TargetUtil, ShrinksOneStepBelowLow) {
  EXPECT_EQ(decide("target-util", 3, 0, 1), 2u);
  EXPECT_EQ(decide("target-util?low=0.05", 3, 0, 3), 3u)
      << "a tighter low bound keeps the fleet";
}

TEST(QueueDepth, ScalesOnBacklogPerNode) {
  // 10 queued on 2 nodes = 5 per node > default high 4.
  EXPECT_EQ(decide("queue-depth", 2, 10, 10), 3u);
  // No queue at all: 0 per node < default low 0.5.
  EXPECT_EQ(decide("queue-depth", 2, 0, 10), 1u);
  // 2 per node sits between the bounds.
  EXPECT_EQ(decide("queue-depth", 2, 4, 10), 2u);
}

TEST(Predictive, SizesFromTheArrivalHistory) {
  const auto controller =
      make_autoscaler(AutoscalerSpec::parse("predictive?window-s=10&target=1")
                          .normalized());
  EXPECT_DOUBLE_EQ(controller->history_window_s(), 10.0);

  core::RuntimeHistory history;
  history.register_arrival_window(10.0);
  // 40 arrivals over the last 10 s, each running 2.5 s: demand = 4/s * 2.5
  // = 10 cores, exactly one 10-core node at target 1.
  for (int i = 0; i < 40; ++i) {
    history.record_arrival(1, 90.0 + 0.25 * i);
    history.record_runtime(1, 2.5, 90.0 + 0.25 * i);
  }
  GroupObservation group;
  group.active = 3;
  group.cores_per_node = 10;
  ClusterObservation obs;
  obs.now = 100.0;
  obs.num_functions = 2;
  obs.history = &history;
  EXPECT_EQ(controller->desired_nodes(group, obs), 1u);

  // Halve the target utilization: twice the fleet.
  const auto cautious = make_autoscaler(
      AutoscalerSpec::parse("predictive?window-s=10&target=0.5").normalized());
  EXPECT_EQ(cautious->desired_nodes(group, obs), 2u);
}

TEST(Predictive, IdleHistoryShrinksOnlyWhenTheGroupIsIdle) {
  const auto controller = make_autoscaler(
      AutoscalerSpec::parse("predictive?window-s=10").normalized());
  core::RuntimeHistory history;
  history.register_arrival_window(10.0);
  GroupObservation group;
  group.active = 3;
  group.cores_per_node = 10;
  group.executing = 2;  // still working on the backlog
  ClusterObservation obs;
  obs.now = 100.0;
  obs.num_functions = 1;
  obs.history = &history;
  EXPECT_EQ(controller->desired_nodes(group, obs), 3u)
      << "no arrivals but live work: hold";
  group.executing = 0;
  EXPECT_EQ(controller->desired_nodes(group, obs), 2u)
      << "no arrivals, no work: release one node";
}

// ---------------------------------------------------------------------------
// The Cluster driver: closed-loop scaling end to end.

class AutoscalerClusterTest : public ::testing::Test {
 protected:
  AutoscalerClusterTest() : catalog_(workload::sebs_catalog()) {}

  workload::Scenario burst(const std::string& spec, std::uint64_t seed,
                           int cores = 5) {
    workload::ScenarioContext ctx;
    ctx.catalog = &catalog_;
    ctx.cores = cores;
    sim::Rng rng(seed);
    return workload::make_scenario(spec, ctx, rng);
  }

  workload::FunctionCatalog catalog_;
};

TEST_F(AutoscalerClusterTest, ScalesUpUnderLoadAndEveryCallCompletes) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.deployment = ClusterSpec::parse(
      "node:1?max-nodes=4; "
      "autoscaler=target-util?high=0.7&tick-s=1&cooldown-s=1");
  Cluster cluster(engine, catalog_, params, 1);
  EXPECT_TRUE(cluster.autoscaling());
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=300&window=20", 1);
  cluster.run_scenario(scenario);
  engine.run();
  EXPECT_EQ(cluster.collector().size(), scenario.size());
  EXPECT_GT(cluster.scale_ups(), 0u) << "the overload must trigger growth";
  EXPECT_GT(cluster.num_nodes(), 1u);
  EXPECT_LE(cluster.num_nodes(), 4u) << "max-nodes bounds the fleet";
  std::size_t on_joined = 0;
  for (const auto& rec : cluster.collector().records()) {
    if (rec.node > 0) ++on_joined;
  }
  EXPECT_GT(on_joined, 0u) << "scaled-up nodes take traffic";
}

TEST_F(AutoscalerClusterTest, ScalesDownWhenIdleAndMinNodesHolds) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  // A short burst followed by a long quiet tail: the band controller must
  // drain the extra nodes but never go below min-nodes=2.
  params.deployment = ClusterSpec::parse(
      "node:4?min-nodes=2; "
      "autoscaler=target-util?low=0.4&tick-s=1&cooldown-s=1");
  Cluster cluster(engine, catalog_, params, 2);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=40&window=4", 2);
  cluster.run_scenario(scenario);
  engine.run();
  EXPECT_EQ(cluster.collector().size(), scenario.size());
  EXPECT_GT(cluster.scale_downs(), 0u);
  EXPECT_EQ(cluster.routable_nodes(), 2u)
      << "min-nodes floors the scale-down";
  // The drained members finished their backlog and retired.
  std::size_t drained = 0;
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    if (cluster.node_state(n) == NodeState::kDrained) ++drained;
  }
  EXPECT_EQ(drained, cluster.scale_downs());
}

TEST_F(AutoscalerClusterTest, CooldownRateLimitsScaling) {
  auto scale_events = [&](double cooldown_s) {
    sim::Engine engine;
    ClusterParams params;
    params.node.cores = 5;
    params.deployment = ClusterSpec::parse(
        "node:1?max-nodes=8; autoscaler=target-util?high=0.6&tick-s=0.5"
        "&cooldown-s=" +
        std::to_string(cooldown_s));
    Cluster cluster(engine, catalog_, params, 3);
    cluster.warmup();
    cluster.run_scenario(burst("fixed-total?total=300&window=20", 3));
    engine.run();
    EXPECT_EQ(cluster.collector().size(), 300u);
    return cluster.scale_ups() + cluster.scale_downs();
  };
  const std::size_t fast = scale_events(0.5);
  const std::size_t slow = scale_events(15.0);
  EXPECT_GT(fast, slow)
      << "a 30x longer cooldown must allow fewer scaling actions";
  EXPECT_GT(slow, 0u);
}

TEST_F(AutoscalerClusterTest, CostMeteringProRatesJoinsAndDrains) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.deployment = ClusterSpec::parse(
      "node:1?cost-per-hour=3.6&max-nodes=4; "
      "autoscaler=target-util?high=0.6&tick-s=1&cooldown-s=1");
  Cluster cluster(engine, catalog_, params, 4);
  cluster.warmup();
  cluster.run_scenario(burst("fixed-total?total=200&window=15", 4));
  engine.run();
  ASSERT_GT(cluster.scale_ups(), 0u);
  const double horizon = engine.now();
  // Joined nodes are metered from their join, not from t=0: with at least
  // one join, total node-seconds sits strictly between one node's lifetime
  // and "every node for the whole run".
  const double seconds = cluster.node_seconds(0);
  EXPECT_GT(seconds, horizon);
  EXPECT_LT(seconds,
            horizon * static_cast<double>(cluster.num_nodes()) - 1e-9);
  EXPECT_DOUBLE_EQ(cluster.node_hours(), seconds / 3600.0);
  // cost-per-hour=3.6 prices a node-second at $0.001.
  EXPECT_NEAR(cluster.cost_usd(), seconds * 0.001, 1e-9);
}

TEST_F(AutoscalerClusterTest, StaticFleetMetersEveryNodeForTheFullRun) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.deployment = ClusterSpec::parse("node:3?cost-per-hour=1");
  Cluster cluster(engine, catalog_, params, 5);
  cluster.warmup();
  cluster.run_scenario(burst("fixed-total?total=60", 5));
  engine.run();
  EXPECT_FALSE(cluster.autoscaling());
  EXPECT_NEAR(cluster.node_seconds(0), 3.0 * engine.now(), 1e-9);
  EXPECT_NEAR(cluster.cost_usd(), 3.0 * engine.now() / 3600.0, 1e-9);
}

TEST_F(AutoscalerClusterTest, PredictiveControllerDrivesTheFleet) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.deployment = ClusterSpec::parse(
      "node:1?max-nodes=6; "
      "autoscaler=predictive?window-s=5&target=0.5&tick-s=1&cooldown-s=1");
  Cluster cluster(engine, catalog_, params, 6);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=300&window=20", 6);
  cluster.run_scenario(scenario);
  engine.run();
  EXPECT_EQ(cluster.collector().size(), scenario.size());
  EXPECT_GT(cluster.scale_ups(), 0u)
      << "the demand estimate must outgrow one node";
}

TEST(AutoscalerClusterBounds, ScaleToZeroIsImpossibleByDefault) {
  // The default min-nodes floor is 1, so even an aggressive shrink
  // controller cannot empty the fleet (which would abort the balancer).
  const auto spec = ClusterSpec::parse(
      "node:2; autoscaler=target-util?low=0.99&high=1000&tick-s=1"
      "&cooldown-s=1");
  EXPECT_EQ(spec.group_min_nodes(0), 1u);
}

}  // namespace
}  // namespace whisk::cluster
