#include "cluster/resilience.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cluster/cluster.h"
#include "cluster/cluster_spec.h"
#include "cluster/fault.h"
#include "workload/scenario_registry.h"

namespace whisk::cluster {
namespace {

TEST(ResilienceSpecTest, ParsesAndRoundTrips) {
  const auto spec =
      ResilienceSpec::parse("Timeout-S=2&MAX-ATTEMPTS=3&hedge-p=0.95");
  EXPECT_TRUE(spec.enabled());
  EXPECT_EQ(spec.number("timeout-s", 0.0), 2.0);
  EXPECT_EQ(spec.count("max-attempts", 4), 3u);
  EXPECT_EQ(spec.to_string(), "hedge-p=0.95&max-attempts=3&timeout-s=2");
  EXPECT_EQ(ResilienceSpec::parse(spec.to_string()), spec);
}

TEST(ResilienceSpecTest, NoneAndEmptyAreDisabled) {
  EXPECT_FALSE(ResilienceSpec{}.enabled());
  EXPECT_FALSE(ResilienceSpec::parse("").enabled());
  EXPECT_FALSE(ResilienceSpec::parse("none").enabled());
}

TEST(ResilienceSpecTest, ValidationNamesTheKnob) {
  EXPECT_DEATH((void)ResilienceSpec::parse("warp-drive=1"),
               "warp-drive.*valid parameters");
  EXPECT_DEATH((void)ResilienceSpec::parse("timeout-s=-1"),
               "timeout-s must be >= 0");
  EXPECT_DEATH((void)ResilienceSpec::parse("max-attempts=0"),
               "max-attempts must be >= 1");
  EXPECT_DEATH((void)ResilienceSpec::parse("hedge-p=1"), "hedge-p");
  EXPECT_DEATH((void)ResilienceSpec::parse("breaker-failures=3"),
               "needs timeout-s");
  EXPECT_DEATH((void)ResilienceSpec::parse("timeout-s=banana"),
               "not a finite number");
}

TEST(ResilienceSpecTest, EveryKnobIsDeclared) {
  // The catalog surface and the validator must agree on the knob set.
  std::set<std::string> declared;
  for (const auto& param : resilience_params()) declared.insert(param.name);
  for (const char* knob :
       {"timeout-s", "max-attempts", "retry-budget", "hedge-p",
        "hedge-min-samples", "breaker-failures", "breaker-cooldown-s",
        "max-queue"}) {
    EXPECT_TRUE(declared.count(knob) == 1) << knob;
  }
}

class ResilienceClusterTest : public ::testing::Test {
 protected:
  ResilienceClusterTest() : catalog_(workload::sebs_catalog()) {}

  workload::Scenario burst(const std::string& spec, std::uint64_t seed,
                           int cores) {
    workload::ScenarioContext ctx;
    ctx.catalog = &catalog_;
    ctx.cores = cores;
    sim::Rng rng(seed);
    return workload::make_scenario(spec, ctx, rng);
  }

  workload::FunctionCatalog catalog_;
};

// A 50x straggler next to a healthy node: hedges fire once the latency
// ring has samples, and the healthy duplicate wins.
TEST_F(ResilienceClusterTest, HedgeDuplicateWinsAgainstStraggler) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.deployment =
      ClusterSpec::parse("node:2; resilience=hedge-p=0.5&hedge-min-samples=2");
  Cluster cluster(engine, catalog_, params, 2);
  cluster.warmup();
  cluster.fault_set_speed(0, 50.0);

  const auto scenario = burst("uniform?intensity=30", 2, /*cores=*/10);
  cluster.run_scenario(scenario);
  engine.run();

  EXPECT_EQ(cluster.collector().size(), scenario.size());
  EXPECT_EQ(cluster.collector().ok_calls(), scenario.size());
  EXPECT_GT(cluster.hedges(), 0u);
  EXPECT_GT(cluster.hedges_won(), 0u);
  EXPECT_LE(cluster.hedges_won(), cluster.hedges());
  // Hedging alone never sheds or drops.
  EXPECT_EQ(cluster.collector().shed_calls(), 0u);
  EXPECT_EQ(cluster.collector().dropped_calls(), 0u);
}

// A test-local fault process that swallows every completion coming from
// node 0 — a deterministic failure signal for the breaker tests, and a
// demonstration of the open registry.
class EatNodeZero final : public FaultProcess {
 public:
  explicit EatNodeZero(const FaultSpec&) {}

  [[nodiscard]] std::string_view name() const override {
    return "eat-node-zero";
  }
  [[nodiscard]] std::string help() const override {
    return "test-only: swallow every completion from node 0";
  }
  [[nodiscard]] bool drops_completions() const override { return true; }
  void start(FaultHost& host, sim::Rng) override { host_ = &host; }
  [[nodiscard]] bool drop_completion(
      const metrics::CallRecord& record) override {
    if (record.node != 0) return false;
    host_->fault_note_injected();
    return true;
  }

 private:
  FaultHost* host_ = nullptr;
};

void register_eat_node_zero() {
  static const bool once = [] {
    FaultRegistry::instance().register_factory(
        "eat-node-zero", [](const FaultSpec& spec) {
          return std::make_unique<EatNodeZero>(spec);
        });
    return true;
  }();
  (void)once;
}

// Node 0 answers nothing: consecutive timeouts open its breaker, retries
// re-drive the stranded calls through node 1, and half-open probes that
// time out re-open the breaker. Node 1 has enough cores to absorb the
// whole workload, so every call still completes.
TEST_F(ResilienceClusterTest, BreakerOpensOnConsecutiveTimeouts) {
  register_eat_node_zero();
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 10;
  params.deployment = ClusterSpec::parse(
      "node:2; faults=eat-node-zero; "
      "resilience=timeout-s=30&max-attempts=6&retry-budget=2&"
      "breaker-failures=2&breaker-cooldown-s=10");
  Cluster cluster(engine, catalog_, params, 4);
  cluster.warmup();

  const auto scenario = burst("uniform?intensity=30", 4, /*cores=*/10);
  cluster.run_scenario(scenario);
  engine.run();

  const auto& col = cluster.collector();
  EXPECT_EQ(col.size(), scenario.size());
  EXPECT_EQ(col.ok_calls() + col.dropped_calls(), scenario.size());
  // The breaker keeps the black-hole node from eating more than a sliver.
  EXPECT_GE(col.ok_calls(), scenario.size() * 9 / 10);
  EXPECT_GE(cluster.timeouts(), 2u);
  EXPECT_GE(cluster.retries(), 1u);
  EXPECT_GE(cluster.breaker_opens(), 1u);
  EXPECT_GE(cluster.faults_injected(), 1u);
  // Node 0 completed work whose answers were all lost; node 1 served every
  // acknowledged response.
  for (const auto& rec : col.records()) {
    if (rec.disposition == metrics::Disposition::kOk) {
      EXPECT_EQ(rec.node, 1);
    }
  }
}

// Saturate one small node with max-queue set: overflow calls are refused
// at admission with the shed disposition, and every call still resolves
// exactly once.
TEST_F(ResilienceClusterTest, AdmissionShedsWhenEveryNodeIsSaturated) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 2;
  params.deployment = ClusterSpec::parse("node:1; resilience=max-queue=4");
  Cluster cluster(engine, catalog_, params, 3);
  cluster.warmup();

  const auto scenario = burst("uniform?intensity=60", 3, /*cores=*/30);
  cluster.run_scenario(scenario);
  engine.run();

  const auto& col = cluster.collector();
  EXPECT_EQ(col.size(), scenario.size());
  EXPECT_GT(col.shed_calls(), 0u);
  EXPECT_EQ(col.ok_calls() + col.shed_calls(), scenario.size());
  for (const auto& rec : col.records()) {
    if (rec.disposition == metrics::Disposition::kShed) {
      EXPECT_EQ(rec.node, -1);
      EXPECT_GE(rec.attempts, 1);
    }
  }
}

// Every completion lost and only two attempts allowed: the retry bound
// turns each call into a dropped record instead of a hung run.
TEST_F(ResilienceClusterTest, AttemptBoundDropsInsteadOfHanging) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.deployment = ClusterSpec::parse(
      "node:2; faults=lost-completion?probability=1; "
      "resilience=timeout-s=5&max-attempts=2&retry-budget=1");
  Cluster cluster(engine, catalog_, params, 5);
  cluster.warmup();

  const auto scenario = burst("uniform?intensity=30", 5, /*cores=*/10);
  cluster.run_scenario(scenario);
  engine.run();

  const auto& col = cluster.collector();
  EXPECT_EQ(col.size(), scenario.size());
  EXPECT_EQ(col.dropped_calls(), scenario.size());
  EXPECT_EQ(col.ok_calls(), 0u);
  for (const auto& rec : col.records()) {
    EXPECT_EQ(rec.disposition, metrics::Disposition::kDropped);
    EXPECT_EQ(rec.attempts, 2);
  }
}

}  // namespace
}  // namespace whisk::cluster
