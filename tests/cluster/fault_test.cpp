#include "cluster/fault.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cluster/cluster.h"
#include "cluster/cluster_spec.h"
#include "workload/scenario_registry.h"

namespace whisk::cluster {
namespace {

TEST(FaultSpecTest, ParsesAndRoundTrips) {
  const auto spec = FaultSpec::parse("Crash-Restart?MTBF-S=120&mttr-s=15");
  EXPECT_EQ(spec.name, "crash-restart");
  EXPECT_EQ(spec.number("mtbf-s", 0.0), 120.0);
  EXPECT_EQ(spec.number("mttr-s", 0.0), 15.0);
  EXPECT_EQ(spec.to_string(), "crash-restart?mtbf-s=120&mttr-s=15");
  EXPECT_EQ(FaultSpec::parse(spec.to_string()), spec);
}

TEST(FaultSpecTest, AliasesResolveToCanonicalNames) {
  EXPECT_EQ(FaultSpec::parse("crash").name, "crash-restart");
  EXPECT_EQ(FaultSpec::parse("straggler?factor=2").name, "slow-node");
}

TEST(FaultSpecTest, NoneIsDisabled) {
  EXPECT_FALSE(FaultSpec{}.enabled());
  EXPECT_FALSE(FaultSpec::parse("none").enabled());
  EXPECT_TRUE(FaultSpec::parse("flap").enabled());
}

TEST(FaultSpecTest, UnknownNameAndKeyAbort) {
  EXPECT_DEATH((void)FaultSpec::parse("meteor-strike"), "meteor-strike");
  EXPECT_DEATH((void)FaultSpec::parse("flap?mtbf-s=3"), "mtbf-s");
  EXPECT_DEATH((void)FaultSpec::parse("crash-restart?mtbf-s=0"), "mtbf-s");
  EXPECT_DEATH((void)FaultSpec::parse("slow-node?factor=0.5"), "factor");
  EXPECT_DEATH((void)FaultSpec::parse("lost-completion?probability=1.5"),
               "probability");
}

TEST(FaultSpecTest, ListParsingDropsNoneAndSplitsOnPlus) {
  EXPECT_TRUE(parse_fault_list("").empty());
  EXPECT_TRUE(parse_fault_list("none").empty());
  const auto two = parse_fault_list("crash-restart?mtbf-s=60+flap");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].name, "crash-restart");
  EXPECT_EQ(two[1].name, "flap");
  EXPECT_EQ(fault_list_to_string(two, ','),
            "crash-restart?mtbf-s=60,flap");
  EXPECT_EQ(fault_list_to_string({}, ','), "none");
}

TEST(FaultRegistryTest, ListsAllBuiltins) {
  const auto names = FaultRegistry::instance().names();
  const std::set<std::string> set(names.begin(), names.end());
  for (const char* name :
       {"crash-restart", "flap", "slow-node", "lost-completion"}) {
    EXPECT_TRUE(set.count(name) == 1) << name;
  }
}

TEST(FaultRegistryTest, DisruptiveAndDropFlags) {
  EXPECT_TRUE(fault_is_disruptive("crash-restart"));
  EXPECT_TRUE(fault_is_disruptive("flap"));
  EXPECT_FALSE(fault_is_disruptive("slow-node"));
  EXPECT_FALSE(fault_is_disruptive("lost-completion"));
  EXPECT_TRUE(fault_drops_completions("lost-completion"));
  EXPECT_FALSE(fault_drops_completions("crash-restart"));
}

TEST(FaultClusterSpecTest, FaultsSectionRoundTrips) {
  const auto spec = ClusterSpec::parse(
      "node:4; faults=crash-restart?mtbf-s=60,slow-node?factor=2");
  ASSERT_EQ(spec.faults.size(), 2u);
  EXPECT_TRUE(spec.has_disruptive_faults());
  EXPECT_TRUE(spec.needs_in_flight_tracking());
  EXPECT_EQ(ClusterSpec::parse(spec.to_string()), spec);
  EXPECT_EQ(ClusterSpec::parse(spec.to_compact_string()), spec);
}

TEST(FaultClusterSpecTest, ValidationCatchesBadSections) {
  // A fault scoped to a group that does not exist.
  EXPECT_DEATH(
      (void)ClusterSpec::parse("big:2; faults=crash-restart?group=tiny"),
      "tiny");
  // Losing completions without a retry timeout would hang the run.
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; faults=lost-completion"),
               "timeout");
}

// End-to-end: every registered fault active at once, with the resilience
// layer recovering what the faults break. The run must terminate with
// exactly one terminal record per call.
TEST(FaultClusterTest, ChaosRunResolvesEveryCall) {
  const auto catalog = workload::sebs_catalog();
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.deployment = ClusterSpec::parse(
      "node:3; "
      "faults=crash-restart?mtbf-s=30&mttr-s=5,"
      "flap?period-s=25&down-s=3,slow-node?mtbf-s=20&factor=3,"
      "lost-completion?probability=0.05; "
      "resilience=timeout-s=10&max-attempts=5&retry-budget=1");
  Cluster cluster(engine, catalog, params, 7);
  cluster.warmup();

  workload::ScenarioContext ctx;
  ctx.catalog = &catalog;
  ctx.cores = 15;
  sim::Rng rng(7);
  const auto scenario =
      workload::make_scenario("uniform?intensity=30", ctx, rng);
  cluster.run_scenario(scenario);
  engine.run();

  const auto& col = cluster.collector();
  EXPECT_EQ(col.size(), scenario.size());
  EXPECT_EQ(col.ok_calls() + col.shed_calls() + col.dropped_calls(),
            scenario.size());
  EXPECT_GT(cluster.faults_injected(), 0u);
  // Every id resolves exactly once.
  std::set<workload::CallId> ids;
  for (const auto& rec : col.records()) {
    EXPECT_TRUE(ids.insert(rec.id).second) << "call " << rec.id
                                           << " resolved twice";
    EXPECT_GE(rec.attempts, 1);
  }
}

// The same chaos cell twice from the same seed is byte-identical state:
// fault draws ride on forked per-cell streams, not shared globals.
TEST(FaultClusterTest, ChaosRunIsDeterministic) {
  const auto catalog = workload::sebs_catalog();
  auto run_once = [&catalog]() {
    sim::Engine engine;
    ClusterParams params;
    params.node.cores = 5;
    params.deployment = ClusterSpec::parse(
        "node:2; faults=crash-restart?mtbf-s=25&mttr-s=5; "
        "resilience=timeout-s=10&max-attempts=4");
    Cluster cluster(engine, catalog, params, 3);
    cluster.warmup();
    workload::ScenarioContext ctx;
    ctx.catalog = &catalog;
    ctx.cores = 10;
    sim::Rng rng(3);
    const auto scenario =
        workload::make_scenario("uniform?intensity=30", ctx, rng);
    cluster.run_scenario(scenario);
    engine.run();
    std::vector<double> completions;
    for (const auto& rec : cluster.collector().records()) {
      completions.push_back(rec.completion);
    }
    return std::make_tuple(completions, cluster.faults_injected(),
                           cluster.resubmissions(),
                           cluster.unavailability_s());
  };
  EXPECT_EQ(run_once(), run_once());
}

// A disruptive process that never fires on its own — it arms the
// in-flight tracking machinery so a test can drive the FaultHost surface
// by hand.
class InertDisruptiveFault final : public FaultProcess {
 public:
  explicit InertDisruptiveFault(const FaultSpec&) {}
  [[nodiscard]] std::string_view name() const override {
    return "inert-disruptive";
  }
  [[nodiscard]] std::string help() const override {
    return "test-only: disruptive but never injects";
  }
  [[nodiscard]] bool disruptive() const override { return true; }
};

void register_inert_disruptive() {
  static const bool once = [] {
    FaultRegistry::instance().register_factory(
        "inert-disruptive", [](const FaultSpec& spec) {
          return std::make_unique<InertDisruptiveFault>(spec);
        });
    return true;
  }();
  (void)once;
}

// fault_fail / fault_restart drive the restart-in-place path: the slot
// keeps its index, gets a cold invoker, and node-hour metering excludes
// the downtime.
TEST(FaultClusterTest, FailAndRestartInPlace) {
  register_inert_disruptive();
  const auto catalog = workload::sebs_catalog();
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 2;
  // The inert process arms in-flight tracking without injecting anything,
  // so the test can exercise the FaultHost surface directly.
  params.deployment = ClusterSpec::parse("node:2; faults=inert-disruptive");
  Cluster cluster(engine, catalog, params, 1);
  cluster.warmup();

  ASSERT_TRUE(cluster.fault_node_active(0));
  EXPECT_TRUE(cluster.fault_fail(0));
  EXPECT_FALSE(cluster.fault_fail(0));  // already down
  EXPECT_TRUE(cluster.fault_node_failed(0));
  EXPECT_EQ(cluster.routable_nodes(), 1u);

  engine.schedule_in(10.0, [&] {
    EXPECT_TRUE(cluster.fault_restart(0));
    EXPECT_FALSE(cluster.fault_restart(0));  // already up
  });
  engine.run();
  EXPECT_TRUE(cluster.fault_node_active(0));
  EXPECT_EQ(cluster.routable_nodes(), 2u);
  EXPECT_DOUBLE_EQ(cluster.unavailability_s(), 10.0);
}

}  // namespace
}  // namespace whisk::cluster
