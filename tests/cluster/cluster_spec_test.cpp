#include "cluster/cluster_spec.h"

#include <gtest/gtest.h>

#include "container/keep_alive.h"

namespace whisk::cluster {
namespace {

TEST(ClusterSpecTest, DefaultIsOneHomogeneousNode) {
  const ClusterSpec spec;
  ASSERT_EQ(spec.groups.size(), 1u);
  EXPECT_EQ(spec.groups[0].name, "node");
  EXPECT_EQ(spec.groups[0].count, 1);
  EXPECT_EQ(spec.keep_alive.name, "lru");
  EXPECT_TRUE(spec.events.empty());
  EXPECT_EQ(spec.initial_nodes(), 1u);
  EXPECT_EQ(spec, ClusterSpec::homogeneous(1));
}

TEST(ClusterSpecTest, ParsesTheFullGrammar) {
  const auto spec = ClusterSpec::parse(
      "big:4?cores=16&memory-mb=65536,small:8?cores=4; "
      "keep-alive=ttl?idle-s=600; "
      "events=drain@120:big/0,join@300:small");
  ASSERT_EQ(spec.groups.size(), 2u);
  EXPECT_EQ(spec.groups[0].name, "big");
  EXPECT_EQ(spec.groups[0].count, 4);
  EXPECT_EQ(spec.groups[0].params.at("cores"), "16");
  EXPECT_EQ(spec.groups[0].params.at("memory-mb"), "65536");
  EXPECT_EQ(spec.groups[1].name, "small");
  EXPECT_EQ(spec.groups[1].count, 8);
  EXPECT_EQ(spec.keep_alive.name, "ttl");
  EXPECT_EQ(spec.keep_alive.params.at("idle-s"), "600");
  ASSERT_EQ(spec.events.size(), 2u);
  EXPECT_EQ(spec.events[0].kind, LifecycleKind::kDrain);
  EXPECT_EQ(spec.events[0].time, 120.0);
  EXPECT_EQ(spec.events[0].group, "big");
  EXPECT_EQ(spec.events[0].node, 0);
  EXPECT_EQ(spec.events[1].kind, LifecycleKind::kJoin);
  EXPECT_EQ(spec.initial_nodes(), 12u);
  EXPECT_EQ(spec.initial_cores(10), 4 * 16 + 8 * 4);
}

TEST(ClusterSpecTest, RoundTripsCanonicalForm) {
  const char* text =
      "big:4?cores=16&memory-mb=65536,small:8?cores=4; "
      "keep-alive=ttl?idle-s=600; events=drain@120:big/0,join@300:small";
  const auto spec = ClusterSpec::parse(text);
  EXPECT_EQ(spec.to_string(), text);
  EXPECT_EQ(ClusterSpec::parse(spec.to_string()), spec);
}

TEST(ClusterSpecTest, RoundTripsCompactForm) {
  const auto spec = ClusterSpec::parse(
      "big:2?cores=16+small:4|keep-alive=ttl?idle-s=300|"
      "events=fail@20:small/1+join@30:small");
  EXPECT_EQ(spec.groups.size(), 2u);
  EXPECT_EQ(ClusterSpec::parse(spec.to_compact_string()), spec);
  EXPECT_EQ(ClusterSpec::parse(spec.to_string()), spec);
  // The compact form never contains the campaign grid separators.
  EXPECT_EQ(spec.to_compact_string().find(';'), std::string::npos);
  EXPECT_EQ(spec.to_compact_string().find(','), std::string::npos);
}

TEST(ClusterSpecTest, RoundTripsOverEveryRegisteredKeepAlivePolicy) {
  for (const auto& name :
       container::KeepAlivePolicyRegistry::instance().names()) {
    const auto spec = ClusterSpec::parse("node:2; keep-alive=" + name);
    EXPECT_EQ(spec.keep_alive.name, name);
    EXPECT_EQ(ClusterSpec::parse(spec.to_string()), spec) << name;
    EXPECT_EQ(ClusterSpec::parse(spec.to_compact_string()), spec) << name;
  }
}

TEST(ClusterSpecTest, DefaultSectionsAreOmittedFromToString) {
  EXPECT_EQ(ClusterSpec::homogeneous(3).to_string(), "node:3");
  EXPECT_EQ(ClusterSpec::parse("node:3").to_string(), "node:3");
}

TEST(ClusterSpecTest, CountDefaultsToOneAndNamesAreCaseFolded) {
  const auto spec = ClusterSpec::parse("BIG?cores=2");
  ASSERT_EQ(spec.groups.size(), 1u);
  EXPECT_EQ(spec.groups[0].name, "big");
  EXPECT_EQ(spec.groups[0].count, 1);
}

TEST(ClusterSpecTest, EventTimesRoundTripAtFullPrecision) {
  // A time needing more than 10 significant digits must survive
  // parse(to_string()) bit-for-bit (and simple times stay short).
  const auto spec = ClusterSpec::parse(
      "node:2; events=drain@999999999.99:node/0,fail@0.5:node/1");
  EXPECT_EQ(ClusterSpec::parse(spec.to_string()), spec);
  EXPECT_NE(spec.to_string().find("fail@0.5:"), std::string::npos);
  EXPECT_NE(spec.to_string().find("drain@999999999.99:"),
            std::string::npos);
}

TEST(ClusterSpecTest, EventsAreSortedByTime) {
  const auto spec = ClusterSpec::parse(
      "node:2; events=fail@50:node/1,drain@10:node/0");
  ASSERT_EQ(spec.events.size(), 2u);
  EXPECT_EQ(spec.events[0].kind, LifecycleKind::kDrain);
  EXPECT_EQ(spec.events[1].kind, LifecycleKind::kFail);
}

TEST(ClusterSpecTest, JoinRaisesTheValidIndexBound) {
  // node/2 only exists because a join precedes it.
  const auto spec = ClusterSpec::parse(
      "node:2; events=join@10:node,drain@20:node/2");
  EXPECT_EQ(spec.events.size(), 2u);
}

TEST(ClusterSpecTest, GroupNodeParamsApplyOverrides) {
  const auto spec = ClusterSpec::parse(
      "big:1?cores=16&memory-mb=65536,small:2; keep-alive=ttl?idle-s=60");
  node::NodeParams base;
  base.cores = 10;
  base.memory_limit_mb = 1024.0;
  const auto big = spec.node_params(0, base);
  EXPECT_EQ(big.cores, 16);
  EXPECT_DOUBLE_EQ(big.memory_limit_mb, 65536.0);
  EXPECT_EQ(big.keep_alive.name, "ttl");
  const auto small = spec.node_params(1, base);
  EXPECT_EQ(small.cores, 10) << "inherits the base";
  EXPECT_DOUBLE_EQ(small.memory_limit_mb, 1024.0);
}

TEST(ClusterSpecDeath, DiagnosticsEchoTheInputAndListValidNames) {
  EXPECT_DEATH((void)ClusterSpec::parse("big:2?cpus=4"),
               "\"big\" does not take parameter \"cpus\".*cores, "
               "cost-per-hour, max-nodes, memory-mb, min-nodes");
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; keep-alive=mru"),
               "unknown keep-alive policy \"mru\".*lru.*ttl.*pool-target");
  EXPECT_DEATH(
      (void)ClusterSpec::parse("node:2; keep-alive=ttl?timeout=3"),
      "\"ttl\" does not take parameter \"timeout\".*idle-s");
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; events=drain@10:huge/0"),
               "targets unknown group \"huge\".*groups: node");
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; events=drain@10:node/7"),
               "has only 2 node");
  // The schedule is validated in firing order: a drain whose target only
  // exists after a later join is a parse-time error, not a mid-sweep one.
  EXPECT_DEATH(
      (void)ClusterSpec::parse("node:1; events=drain@5:node/1,join@10:node"),
      "has only 1 node\\(s\\) at t=5");
  // So are duplicate drains/fails of one node; fail-after-drain stays
  // legal (mirrors the runtime state rules).
  EXPECT_DEATH((void)ClusterSpec::parse(
                   "node:2; events=drain@5:node/0,drain@9:node/0"),
               "already drained");
  EXPECT_DEATH((void)ClusterSpec::parse(
                   "node:2; events=fail@5:node/0,drain@9:node/0"),
               "already failed");
  EXPECT_EQ(ClusterSpec::parse("node:2; events=drain@5:node/0,fail@9:node/0")
                .events.size(),
            2u);
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; events=reboot@10:node/0"),
               "unknown kind \"reboot\"");
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; events=drain@10:node"),
               "names no node index");
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; events=join@10:node/0"),
               "join events add a fresh node");
  EXPECT_DEATH((void)ClusterSpec::parse("node:x"), "not a whole number");
  // A '+' (or any list/section separator) inside a value would reparse as
  // a split point and break the round-trip contract, so it is rejected up
  // front with a spelling hint.
  {
    ClusterSpec spec;
    spec.groups[0].params["memory-mb"] = "6.4e+4";
    EXPECT_DEATH((void)spec.normalized(),
                 "contains a spec separator.*plain-decimal");
  }
  EXPECT_DEATH((void)ClusterSpec::parse("node:0"), "zero nodes at t=0");
  EXPECT_DEATH((void)ClusterSpec::parse("node:1,node:2"),
               "lists group \"node\" twice");
  EXPECT_DEATH((void)ClusterSpec::parse("a b:2"), "not \\[a-z0-9_-\\]\\+");
  EXPECT_DEATH((void)ClusterSpec::parse(""), "empty cluster spec");
}

TEST(ClusterSpecTest, ExplicitLruKeepAliveStillOverridesTheBase) {
  // "keep-alive=lru" equals the default value, but naming it must behave
  // like any explicit policy: it round-trips and it conflicts with a
  // different policy stamped on the base NodeParams.
  const auto spec = ClusterSpec::parse("node:2; keep-alive=lru");
  EXPECT_TRUE(spec.keep_alive_set);
  EXPECT_EQ(spec.to_string(), "node:2; keep-alive=lru");
  node::NodeParams base;
  base.keep_alive = container::KeepAliveSpec::parse("ttl?idle-s=60");
  EXPECT_DEATH((void)spec.node_params(0, base), "set it in one place");
  // Without the explicit section the base policy is honored.
  const auto unset = ClusterSpec::parse("node:2");
  EXPECT_EQ(unset.node_params(0, base).keep_alive.name, "ttl");
}

TEST(ClusterSpecTest, AutoscalerAndSloSectionsRoundTrip) {
  const char* text =
      "big:2?cores=16&cost-per-hour=0.5&max-nodes=6,small:4?cost-per-hour="
      "0.1&min-nodes=2; autoscaler=target-util?high=0.8&low=0.2; "
      "slo=p99<2.5";
  const auto spec = ClusterSpec::parse(text);
  EXPECT_EQ(spec.to_string(), text);
  EXPECT_EQ(ClusterSpec::parse(spec.to_string()), spec);
  EXPECT_EQ(ClusterSpec::parse(spec.to_compact_string()), spec);
  EXPECT_TRUE(spec.autoscaler_set);
  EXPECT_EQ(spec.autoscaler.name, "target-util");
  EXPECT_TRUE(spec.slo_set);
  EXPECT_EQ(spec.slo.metric, "p99");
  EXPECT_DOUBLE_EQ(spec.slo.threshold_s, 2.5);
  EXPECT_DOUBLE_EQ(spec.group_cost_per_hour(0), 0.5);
  EXPECT_DOUBLE_EQ(spec.group_cost_per_hour(1), 0.1);
  EXPECT_EQ(spec.group_max_nodes(0), 6u);
  EXPECT_EQ(spec.group_min_nodes(1), 2u);
  EXPECT_TRUE(spec.needs_in_flight_tracking());
}

TEST(ClusterSpecTest, ScalingBoundsDefaultToOneAndUnbounded) {
  const auto spec = ClusterSpec::parse("node:3,burst:0");
  EXPECT_EQ(spec.group_min_nodes(0), 1u)
      << "populated groups never autoscale to zero";
  EXPECT_EQ(spec.group_min_nodes(1), 0u)
      << "an initially-empty join-only group may stay empty";
  EXPECT_EQ(spec.group_max_nodes(0), 1000000u);
  EXPECT_DOUBLE_EQ(spec.group_cost_per_hour(0), 0.0);
  EXPECT_FALSE(spec.needs_in_flight_tracking());
}

TEST(ClusterSpecTest, UnderscoreAliasesNormalizeToCanonicalKeys) {
  const auto spec = ClusterSpec::parse(
      "node:2?cost_per_hour=0.3&min_nodes=1&max_nodes=4");
  EXPECT_DOUBLE_EQ(spec.group_cost_per_hour(0), 0.3);
  EXPECT_EQ(spec.group_min_nodes(0), 1u);
  EXPECT_EQ(spec.group_max_nodes(0), 4u);
  EXPECT_NE(spec.to_string().find("cost-per-hour=0.3"), std::string::npos);
}

TEST(ClusterSpecDeath, AutoscalerAndSloSectionsAreValidated) {
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; autoscaler=warp-scaler"),
               "unknown autoscaler \"warp-scaler\"");
  EXPECT_DEATH(
      (void)ClusterSpec::parse("node:2; autoscaler=target-util?warp=1"),
      "does not take parameter \"warp\"");
  EXPECT_DEATH((void)ClusterSpec::parse(
                   "node:2; autoscaler=none; autoscaler=target-util"),
               "twice");
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; slo=p42<1"),
               "mean, p50, p75, p95, p99, max");
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; slo=p99<0"), "");
  EXPECT_DEATH((void)ClusterSpec::parse("node:2; slo=p99"), "");
  EXPECT_DEATH((void)ClusterSpec::parse("node:2?min-nodes=3&max-nodes=2"),
               "");
  EXPECT_DEATH((void)ClusterSpec::parse("node:5?max-nodes=3"), "");
  EXPECT_DEATH((void)ClusterSpec::parse("node:2?cost-per-hour=-1"), "");
}

TEST(ClusterSpecTest, ZeroCountGroupIsValidWithOtherNodes) {
  // An initially-empty group that only ever receives joins.
  const auto spec =
      ClusterSpec::parse("core:2,burst:0; events=join@5:burst");
  EXPECT_EQ(spec.initial_nodes(), 2u);
  EXPECT_EQ(spec.groups[1].count, 0);
}

}  // namespace
}  // namespace whisk::cluster
