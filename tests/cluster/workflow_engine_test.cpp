// The workflow engine's runtime contracts:
//   * every spawned stage resolves exactly once, and per instance the
//     ok/shed/dropped dispositions partition the stage count,
//   * e2e latency >= realized critical path >= the longest ok stage's
//     execution interval,
//   * chaos (crashes + retries) never double-releases a join — the
//     "resolved twice" / add_workflow invariants make violations fatal,
//   * a workflow-free cluster never instantiates the engine.
#include "cluster/workflow_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "cluster/cluster.h"
#include "cluster/cluster_spec.h"
#include "workload/scenario_registry.h"
#include "workload/workflow.h"

namespace whisk::cluster {
namespace {

class WorkflowClusterTest : public ::testing::Test {
 protected:
  WorkflowClusterTest() : catalog_(workload::sebs_catalog()) {}

  workload::Scenario burst(const std::string& spec, std::uint64_t seed,
                           int cores) {
    workload::ScenarioContext ctx;
    ctx.catalog = &catalog_;
    ctx.cores = cores;
    sim::Rng rng(seed);
    return workload::make_scenario(spec, ctx, rng);
  }

  // Assert the cross-record invariants for one finished workflow cluster
  // and return records grouped by owning instance.
  std::map<workload::CallId, std::vector<metrics::CallRecord>>
  check_exactly_once(const Cluster& cluster, std::size_t roots,
                     std::size_t stages_per_instance) {
    const auto& col = cluster.collector();
    EXPECT_EQ(cluster.expected_calls(), roots * stages_per_instance);
    EXPECT_EQ(col.size(), cluster.expected_calls());

    std::set<workload::CallId> ids;
    std::set<std::pair<workload::CallId, int>> slots;
    std::map<workload::CallId, std::vector<metrics::CallRecord>> by_instance;
    for (const auto& rec : col.records()) {
      EXPECT_TRUE(ids.insert(rec.id).second)
          << "call " << rec.id << " resolved twice";
      EXPECT_GE(rec.workflow, 0);
      EXPECT_GE(rec.stage, 0);
      EXPECT_TRUE(slots.insert({rec.workflow, rec.stage}).second)
          << "stage " << rec.stage << " of workflow " << rec.workflow
          << " resolved twice";
      by_instance[rec.workflow].push_back(rec);
    }
    EXPECT_EQ(by_instance.size(), roots);
    return by_instance;
  }

  workload::FunctionCatalog catalog_;
};

TEST_F(WorkflowClusterTest, ChainResolvesEveryStageExactlyOnce) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.workflow = workload::WorkflowSpec::parse("chain?stages=4");
  Cluster cluster(engine, catalog_, params, 3);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=60", 3, /*cores=*/5);
  cluster.run_scenario(scenario);
  engine.run();

  const auto by_instance =
      check_exactly_once(cluster, scenario.size(), /*stages_per_instance=*/4);

  const auto& workflows = cluster.collector().workflows();
  ASSERT_EQ(workflows.size(), scenario.size());
  for (const auto& wf : workflows) {
    EXPECT_EQ(wf.stages, 4);
    EXPECT_EQ(wf.ok + wf.shed + wf.dropped, wf.stages);
    EXPECT_EQ(wf.ok, 4) << "fault-free chain sheds nothing";
  }
}

TEST_F(WorkflowClusterTest, E2eDominatesCriticalPathDominatesLongestStage) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 4;
  params.workflow = workload::WorkflowSpec::parse("fanout?width=6");
  Cluster cluster(engine, catalog_, params, 11);
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=40", 11, /*cores=*/4);
  cluster.run_scenario(scenario);
  engine.run();

  const auto by_instance =
      check_exactly_once(cluster, scenario.size(), /*stages_per_instance=*/8);

  // Longest ok execution interval per instance.
  std::map<workload::CallId, double> longest;
  for (const auto& [root, recs] : by_instance) {
    for (const auto& rec : recs) {
      if (rec.disposition != metrics::Disposition::kOk) continue;
      longest[root] =
          std::max(longest[root], rec.exec_end - rec.exec_start);
    }
  }

  const auto& workflows = cluster.collector().workflows();
  ASSERT_EQ(workflows.size(), scenario.size());
  for (const auto& wf : workflows) {
    EXPECT_GE(wf.e2e(), wf.critical_path_s - 1e-9) << "workflow " << wf.id;
    EXPECT_GE(wf.critical_path_s, longest[wf.id] - 1e-9)
        << "workflow " << wf.id;
    EXPECT_GE(wf.slack(), -1e-9);
  }
}

// Chaos: crashes interrupt in-flight stages, the resilience layer retries
// and eventually drops, k-of-n joins release before stragglers finish.
// The run must still resolve every spawned stage exactly once and emit
// exactly one WorkflowRecord per instance — a double-released join would
// trip the engine's "resolved twice" check and abort.
TEST_F(WorkflowClusterTest, ChaosNeverDoubleReleasesAJoin) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  params.workflow = workload::WorkflowSpec::parse("fanout?width=4&join=2");
  params.deployment = ClusterSpec::parse(
      "node:3; "
      "faults=crash-restart?mtbf-s=25&mttr-s=5,flap?period-s=20&down-s=3; "
      "resilience=timeout-s=10&max-attempts=3&retry-budget=1");
  Cluster cluster(engine, catalog_, params, 13);
  cluster.warmup();
  const auto scenario = burst("uniform?intensity=30", 13, /*cores=*/15);
  cluster.run_scenario(scenario);
  engine.run();

  check_exactly_once(cluster, scenario.size(), /*stages_per_instance=*/6);
  EXPECT_GT(cluster.faults_injected(), 0u);

  const auto& workflows = cluster.collector().workflows();
  ASSERT_EQ(workflows.size(), scenario.size());
  for (const auto& wf : workflows) {
    EXPECT_EQ(wf.ok + wf.shed + wf.dropped, wf.stages);
    EXPECT_GE(wf.e2e(), wf.critical_path_s - 1e-9);
  }
}

TEST_F(WorkflowClusterTest, WorkflowFreeClustersSkipTheEngine) {
  sim::Engine engine;
  ClusterParams params;
  params.node.cores = 5;
  Cluster cluster(engine, catalog_, params, 1);
  EXPECT_FALSE(cluster.running_workflows());
  cluster.warmup();
  const auto scenario = burst("fixed-total?total=30", 1, /*cores=*/5);
  cluster.run_scenario(scenario);
  engine.run();
  EXPECT_EQ(cluster.expected_calls(), scenario.size());
  EXPECT_TRUE(cluster.collector().workflows().empty());
  for (const auto& rec : cluster.collector().records()) {
    EXPECT_EQ(rec.workflow, -1);
    EXPECT_EQ(rec.stage, -1);
  }
}

}  // namespace
}  // namespace whisk::cluster
