#include "core/policy_registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/history.h"

namespace whisk::core {
namespace {

PolicyContext ctx(const RuntimeHistory& history, sim::SimTime received,
                  workload::FunctionId fn) {
  return PolicyContext{received, fn, &history};
}

TEST(PolicyRegistryApi, EveryRegisteredNameConstructsAndEchoesItsName) {
  for (const auto& name : PolicyRegistry::instance().names()) {
    auto p = PolicyRegistry::instance().create(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), name);
  }
}

TEST(PolicyRegistryApi, PaperPoliciesComeFirstInFigureOrder) {
  const auto names = PolicyRegistry::instance().names();
  ASSERT_GE(names.size(), 6u);
  EXPECT_EQ(names[0], "fifo");
  EXPECT_EQ(names[1], "sept");
  EXPECT_EQ(names[2], "eect");
  EXPECT_EQ(names[3], "rect");
  EXPECT_EQ(names[4], "fc");
  EXPECT_TRUE(std::find(names.begin(), names.end(), "sjf-aging") !=
              names.end());
}

TEST(PolicyRegistryApi, LookupIsCaseInsensitive) {
  EXPECT_EQ(PolicyRegistry::instance().create("FIFO")->name(), "fifo");
  EXPECT_EQ(PolicyRegistry::instance().create("Sjf-Aging")->name(),
            "sjf-aging");
}

TEST(PolicyRegistryApi, AliasesResolveToCanonicalNames) {
  EXPECT_TRUE(PolicyRegistry::instance().contains("fair-choice"));
  EXPECT_EQ(PolicyRegistry::instance().resolve("fair-choice"), "fc");
  EXPECT_EQ(PolicyRegistry::instance().create("fair-choice")->name(), "fc");
  // Aliases never show up as canonical names.
  const auto names = PolicyRegistry::instance().names();
  EXPECT_TRUE(std::find(names.begin(), names.end(), "fair-choice") ==
              names.end());
}

TEST(PolicyRegistryApi, RuntimeRegistrationIsImmediatelyUsable) {
  class ConstantPolicy final : public Policy {
   public:
    double priority(const PolicyContext&) const override { return 42.0; }
    std::string_view name() const override { return "constant-42"; }
    bool starvation_free() const override { return false; }
  };
  PolicyRegistry::instance().register_factory(
      "constant-42",
      [](const PolicyParams&) { return std::make_unique<ConstantPolicy>(); });
  auto p = PolicyRegistry::instance().create("constant-42");
  RuntimeHistory history(10);
  EXPECT_DOUBLE_EQ(p->priority(ctx(history, 1.0, 0)), 42.0);
}

TEST(PolicyRegistryApiDeath, UnknownNameEchoesInputAndListsNames) {
  EXPECT_DEATH((void)PolicyRegistry::instance().create("lifo"),
               "unknown policy \"lifo\".*fifo.*sept.*eect.*rect.*fc.*"
               "sjf-aging");
}

TEST(PolicyRegistryApiDeath, DuplicateRegistrationIsRejected) {
  EXPECT_DEATH(PolicyRegistry::instance().register_factory(
                   "fifo",
                   [](const PolicyParams&) -> std::unique_ptr<Policy> {
                     return nullptr;
                   }),
               "policy \"fifo\" is already registered");
}

TEST(PolicyRegistryApiDeath, DuplicateRegistrationIsCaseInsensitive) {
  EXPECT_DEATH(PolicyRegistry::instance().register_factory(
                   "FIFO",
                   [](const PolicyParams&) -> std::unique_ptr<Policy> {
                     return nullptr;
                   }),
               "policy \"fifo\" is already registered");
}

// --- sjf-aging behavior ----------------------------------------------------

TEST(SjfAgingPolicy, ReducesToSeptAtWeightZero) {
  RuntimeHistory history(10);
  history.record_runtime(1, 2.0, 0.0);
  PolicyParams params;
  params.sjf_aging_weight = 0.0;
  auto aging = PolicyRegistry::instance().create("sjf-aging", params);
  auto sept = PolicyRegistry::instance().create("sept");
  EXPECT_DOUBLE_EQ(aging->priority(ctx(history, 100.0, 1)),
                   sept->priority(ctx(history, 100.0, 1)));
  EXPECT_FALSE(aging->starvation_free()) << "weight 0 is SEPT: can starve";
}

TEST(SjfAgingPolicy, MatchesEectAtWeightOne) {
  RuntimeHistory history(10);
  history.record_runtime(1, 2.0, 0.0);
  PolicyParams params;
  params.sjf_aging_weight = 1.0;
  auto aging = PolicyRegistry::instance().create("sjf-aging", params);
  auto eect = PolicyRegistry::instance().create("eect");
  EXPECT_DOUBLE_EQ(aging->priority(ctx(history, 5.0, 1)),
                   eect->priority(ctx(history, 5.0, 1)));
}

TEST(SjfAgingPolicy, AgingPreventsStarvation) {
  // A long call (E = 8.5 s) waits while short calls (E = 0.012 s) keep
  // arriving. Under SEPT every later short call outranks it forever; under
  // sjf-aging a short call received after E_long / w loses to the old long
  // call, so the long call's wait is bounded.
  RuntimeHistory history(10);
  history.record_runtime(1, 8.5, 0.0);    // dna-visualisation-like
  history.record_runtime(2, 0.012, 0.0);  // graph-bfs-like

  auto sept = PolicyRegistry::instance().create("sept");
  PolicyParams params;
  params.sjf_aging_weight = 0.1;
  auto aging = PolicyRegistry::instance().create("sjf-aging", params);
  EXPECT_TRUE(aging->starvation_free());

  const double long_at_zero_sept = sept->priority(ctx(history, 0.0, 1));
  const double long_at_zero_aging = aging->priority(ctx(history, 0.0, 1));

  // Far beyond the aging horizon E_long / w = 85 s: SEPT still serves the
  // brand-new short call first; sjf-aging serves the long call.
  const double much_later = 200.0;
  EXPECT_LT(sept->priority(ctx(history, much_later, 2)), long_at_zero_sept)
      << "SEPT starves the long call indefinitely";
  EXPECT_GT(aging->priority(ctx(history, much_later, 2)),
            long_at_zero_aging)
      << "sjf-aging ages the long call past fresh short arrivals";

  // Within the horizon the short call still wins — it keeps SEPT's
  // short-first behavior where that is safe.
  EXPECT_LT(aging->priority(ctx(history, 10.0, 2)), long_at_zero_aging);
}

}  // namespace
}  // namespace whisk::core
