#include "core/pending_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace whisk::core {
namespace {

TEST(PendingQueue, StartsEmpty) {
  PendingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(PendingQueue, PopsInPriorityOrder) {
  PendingQueue<int> q;
  q.push(3.0, 3);
  q.push(1.0, 1);
  q.push(2.0, 2);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(PendingQueue, EqualPrioritiesKeepInsertionOrder) {
  PendingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(5.0, i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(PendingQueue, StabilityMakesFifoPolicyExactlyFifo) {
  // FIFO keys are receive times which can collide; insertion order must
  // break the tie.
  PendingQueue<std::string> q;
  q.push(1.0, "a");
  q.push(1.0, "b");
  q.push(0.5, "c");
  q.push(1.0, "d");
  EXPECT_EQ(q.pop(), "c");
  EXPECT_EQ(q.pop(), "a");
  EXPECT_EQ(q.pop(), "b");
  EXPECT_EQ(q.pop(), "d");
}

TEST(PendingQueue, TopInspectsWithoutRemoving) {
  PendingQueue<int> q;
  q.push(2.0, 20);
  q.push(1.0, 10);
  EXPECT_EQ(q.top(), 10);
  EXPECT_DOUBLE_EQ(q.top_priority(), 1.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(PendingQueue, NegativePrioritiesWork) {
  PendingQueue<int> q;
  q.push(0.0, 0);
  q.push(-1.0, -1);
  EXPECT_EQ(q.pop(), -1);
}

TEST(PendingQueue, MoveOnlyValues) {
  PendingQueue<std::unique_ptr<int>> q;
  q.push(2.0, std::make_unique<int>(2));
  q.push(1.0, std::make_unique<int>(1));
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
}

TEST(PendingQueueDeath, PopEmptyAborts) {
  PendingQueue<int> q;
  EXPECT_DEATH(q.pop(), "empty");
}

TEST(PendingQueueDeath, TopEmptyAborts) {
  PendingQueue<int> q;
  EXPECT_DEATH((void)q.top(), "empty");
}

// Property: popping yields nondecreasing priorities for arbitrary inputs.
class QueueOrdering : public ::testing::TestWithParam<int> {};

TEST_P(QueueOrdering, NondecreasingPriorities) {
  PendingQueue<double> q;
  unsigned state = static_cast<unsigned>(GetParam()) * 2246822519u + 1u;
  for (int i = 0; i < 500; ++i) {
    state = state * 1664525u + 1013904223u;
    const double p = static_cast<double>(state % 1000) / 10.0;
    q.push(p, p);
  }
  double prev = -1.0;
  while (!q.empty()) {
    const double got = q.pop();
    ASSERT_GE(got, prev);
    prev = got;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueOrdering, ::testing::Range(0, 5));

}  // namespace
}  // namespace whisk::core
