#include "core/policy.h"

#include <gtest/gtest.h>

namespace whisk::core {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  PolicyContext ctx(sim::SimTime received, workload::FunctionId fn) const {
    return PolicyContext{received, fn, &history_};
  }

  RuntimeHistory history_{10};
};

TEST_F(PolicyTest, FifoPriorityIsReceiveTime) {
  auto fifo = make_policy(PolicyKind::kFifo);
  EXPECT_DOUBLE_EQ(fifo->priority(ctx(3.5, 1)), 3.5);
  EXPECT_DOUBLE_EQ(fifo->priority(ctx(9.0, 2)), 9.0);
}

TEST_F(PolicyTest, SeptPriorityIsExpectedRuntime) {
  auto sept = make_policy(PolicyKind::kSept);
  history_.record_runtime(1, 2.0, 0.0);
  history_.record_runtime(1, 4.0, 1.0);
  EXPECT_DOUBLE_EQ(sept->priority(ctx(100.0, 1)), 3.0)
      << "receive time is irrelevant to SEPT";
}

TEST_F(PolicyTest, SeptUnknownFunctionGetsZero) {
  auto sept = make_policy(PolicyKind::kSept);
  EXPECT_DOUBLE_EQ(sept->priority(ctx(5.0, 7)), 0.0)
      << "never-seen functions get estimate 0 (highest priority)";
}

TEST_F(PolicyTest, SeptOrdersShortBeforeLong) {
  auto sept = make_policy(PolicyKind::kSept);
  history_.record_runtime(1, 0.012, 0.0);  // graph-bfs-like
  history_.record_runtime(2, 8.5, 0.0);    // dna-visualisation-like
  EXPECT_LT(sept->priority(ctx(10.0, 1)), sept->priority(ctx(0.0, 2)));
}

TEST_F(PolicyTest, EectAddsReceiveTime) {
  auto eect = make_policy(PolicyKind::kEect);
  history_.record_runtime(1, 2.0, 0.0);
  EXPECT_DOUBLE_EQ(eect->priority(ctx(5.0, 1)), 7.0);
}

TEST_F(PolicyTest, EectPreventsInfiniteJumping) {
  // Paper Sec. IV: if r'(j) > r'(i) + E(p(i)), call j runs after call i —
  // so a later call can only jump calls within the E(p) horizon.
  auto eect = make_policy(PolicyKind::kEect);
  history_.record_runtime(1, 2.0, 0.0);  // long-ish function
  history_.record_runtime(2, 0.0, 0.0);  // instant function
  const double long_early = eect->priority(ctx(0.0, 1));   // 2.0
  const double short_late = eect->priority(ctx(3.0, 2));   // 3.0
  EXPECT_LT(long_early, short_late)
      << "a short call released past the horizon does not starve the long";
}

TEST_F(PolicyTest, RectUsesPreviousArrival) {
  auto rect = make_policy(PolicyKind::kRect);
  history_.record_runtime(1, 2.0, 0.0);
  history_.record_arrival(1, 4.0);
  // r-bar(i) + E(p): 4.0 + 2.0, regardless of this call's receive time.
  EXPECT_DOUBLE_EQ(rect->priority(ctx(100.0, 1)), 6.0);
}

TEST_F(PolicyTest, RectNoPreviousArrivalActsLikeSept) {
  auto rect = make_policy(PolicyKind::kRect);
  history_.record_runtime(1, 2.0, 0.0);
  EXPECT_DOUBLE_EQ(rect->priority(ctx(100.0, 1)), 2.0);
}

TEST_F(PolicyTest, RectPriorityIncreasesOverTime) {
  // r-bar grows with each arrival, so RECT is starvation-free (Sec. IV).
  auto rect = make_policy(PolicyKind::kRect);
  history_.record_runtime(1, 2.0, 0.0);
  history_.record_arrival(1, 1.0);
  const double p1 = rect->priority(ctx(2.0, 1));
  history_.record_arrival(1, 10.0);
  const double p2 = rect->priority(ctx(11.0, 1));
  EXPECT_GT(p2, p1);
}

TEST_F(PolicyTest, FcMultipliesCountAndEstimate) {
  auto fc = make_policy(PolicyKind::kFc, PolicyParams{60.0});
  history_.record_runtime(1, 2.0, 10.0);
  history_.record_runtime(1, 2.0, 20.0);
  // Two completions in the window, E = 2.0 -> priority 4.0.
  EXPECT_DOUBLE_EQ(fc->priority(ctx(30.0, 1)), 4.0);
}

TEST_F(PolicyTest, FcWindowSlides) {
  auto fc = make_policy(PolicyKind::kFc, PolicyParams{60.0});
  history_.record_runtime(1, 2.0, 0.0);
  // Received at t=100: the completion at t=0 fell out of [40, 100].
  EXPECT_DOUBLE_EQ(fc->priority(ctx(100.0, 1)), 0.0);
}

TEST_F(PolicyTest, FcFavorsRareLongOverFrequentShort) {
  // The fairness property (Sec. VII-D): a rare long function can beat a
  // hammered short one on total recent consumption.
  auto fc = make_policy(PolicyKind::kFc, PolicyParams{60.0});
  history_.record_runtime(1, 8.5, 1.0);  // dna: one completion
  for (int i = 0; i < 1000; ++i) {       // graph-bfs: very frequent
    history_.record_runtime(2, 0.012, 1.0 + 0.01 * i);
  }
  const double dna = fc->priority(ctx(30.0, 1));    // 1 * 8.5
  const double bfs = fc->priority(ctx(30.0, 2));    // 1000 * 0.012 = 12
  EXPECT_LT(dna, bfs);
}

TEST_F(PolicyTest, FcCustomWindowRespected) {
  auto fc = make_policy(PolicyKind::kFc, PolicyParams{10.0});
  history_.record_runtime(1, 1.0, 0.0);
  history_.record_runtime(1, 1.0, 95.0);
  // At t=100 with T=10 only the completion at 95 counts.
  EXPECT_DOUBLE_EQ(fc->priority(ctx(100.0, 1)), 1.0);
}

TEST(PolicyRegistry, NamesRoundTrip) {
  for (const auto kind : all_policies()) {
    EXPECT_EQ(policy_from_string(to_string(kind)), kind);
  }
}

TEST(PolicyRegistry, ParseIsCaseInsensitive) {
  EXPECT_EQ(policy_from_string("fifo"), PolicyKind::kFifo);
  EXPECT_EQ(policy_from_string("FIFO"), PolicyKind::kFifo);
  EXPECT_EQ(policy_from_string("Sept"), PolicyKind::kSept);
  EXPECT_EQ(policy_from_string("fair-choice"), PolicyKind::kFc);
}

TEST(PolicyRegistry, AllFivePoliciesExist) {
  EXPECT_EQ(all_policies().size(), 5u);
  for (const auto kind : all_policies()) {
    auto p = make_policy(kind);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), registry_name(kind));
  }
}

TEST(PolicyRegistry, StarvationFreedomMatchesPaper) {
  // Paper Sec. IV: FIFO, EECT and RECT prevent starvation; SEPT and FC do
  // not.
  EXPECT_TRUE(make_policy(PolicyKind::kFifo)->starvation_free());
  EXPECT_TRUE(make_policy(PolicyKind::kEect)->starvation_free());
  EXPECT_TRUE(make_policy(PolicyKind::kRect)->starvation_free());
  EXPECT_FALSE(make_policy(PolicyKind::kSept)->starvation_free());
  EXPECT_FALSE(make_policy(PolicyKind::kFc)->starvation_free());
}

TEST(PolicyRegistryDeath, UnknownNameAborts) {
  EXPECT_DEATH((void)policy_from_string("lifo"), "unknown policy");
}

}  // namespace
}  // namespace whisk::core
