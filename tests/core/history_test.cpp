#include "core/history.h"

#include <gtest/gtest.h>

namespace whisk::core {
namespace {

TEST(History, UnknownFunctionHasZeroEstimate) {
  RuntimeHistory h(10);
  // "If a function has never been executed, we set its estimated execution
  // time to 0" (paper Sec. IV-B).
  EXPECT_EQ(h.expected_runtime(3), 0.0);
  EXPECT_EQ(h.samples(3), 0u);
}

TEST(History, SingleSampleIsTheEstimate) {
  RuntimeHistory h(10);
  h.record_runtime(1, 2.5, 0.0);
  EXPECT_DOUBLE_EQ(h.expected_runtime(1), 2.5);
}

TEST(History, AveragesRecentSamples) {
  RuntimeHistory h(10);
  h.record_runtime(1, 1.0, 0.0);
  h.record_runtime(1, 2.0, 1.0);
  h.record_runtime(1, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(h.expected_runtime(1), 2.0);
}

TEST(History, WindowDropsOldSamples) {
  RuntimeHistory h(3);
  h.record_runtime(1, 100.0, 0.0);
  h.record_runtime(1, 1.0, 1.0);
  h.record_runtime(1, 1.0, 2.0);
  h.record_runtime(1, 1.0, 3.0);
  // The 100.0 sample fell out of the 3-sample window.
  EXPECT_DOUBLE_EQ(h.expected_runtime(1), 1.0);
}

TEST(History, TenSampleWindowMatchesPaper) {
  RuntimeHistory h;  // default window
  EXPECT_EQ(h.window(), 10u);
  for (int i = 0; i < 20; ++i) {
    h.record_runtime(2, static_cast<double>(i), static_cast<double>(i));
  }
  // Average of the last 10 values (10..19) = 14.5.
  EXPECT_DOUBLE_EQ(h.expected_runtime(2), 14.5);
  EXPECT_EQ(h.samples(2), 10u);
}

TEST(History, FunctionsAreIndependent) {
  RuntimeHistory h(10);
  h.record_runtime(1, 1.0, 0.0);
  h.record_runtime(2, 9.0, 0.0);
  EXPECT_DOUBLE_EQ(h.expected_runtime(1), 1.0);
  EXPECT_DOUBLE_EQ(h.expected_runtime(2), 9.0);
}

TEST(History, PreviousArrivalDefaultsToZero) {
  RuntimeHistory h(10);
  EXPECT_EQ(h.previous_arrival(1), 0.0);
}

TEST(History, PreviousArrivalTracksLastRecord) {
  RuntimeHistory h(10);
  h.record_arrival(1, 5.0);
  EXPECT_DOUBLE_EQ(h.previous_arrival(1), 5.0);
  h.record_arrival(1, 7.5);
  EXPECT_DOUBLE_EQ(h.previous_arrival(1), 7.5);
  EXPECT_EQ(h.previous_arrival(2), 0.0);
}

TEST(History, CompletionsWithinWindow) {
  RuntimeHistory h(10);
  h.record_runtime(1, 0.1, 10.0);
  h.record_runtime(1, 0.1, 30.0);
  h.record_runtime(1, 0.1, 50.0);
  // At t=60 with T=60: completions at 10, 30, 50 are >= 0 -> all 3.
  EXPECT_EQ(h.completions_within(1, 60.0, 60.0), 3u);
  // At t=80 with T=60: completions at 30 and 50 remain.
  EXPECT_EQ(h.completions_within(1, 60.0, 80.0), 2u);
  // At t=120 with T=60: only the one at 50... 120-60=60 > 50 -> none.
  EXPECT_EQ(h.completions_within(1, 60.0, 120.0), 0u);
}

TEST(History, CompletionsWindowPerFunction) {
  RuntimeHistory h(10);
  h.record_runtime(1, 0.1, 10.0);
  h.record_runtime(2, 0.1, 10.0);
  h.record_runtime(2, 0.1, 11.0);
  EXPECT_EQ(h.completions_within(1, 60.0, 20.0), 1u);
  EXPECT_EQ(h.completions_within(2, 60.0, 20.0), 2u);
  EXPECT_EQ(h.completions_within(3, 60.0, 20.0), 0u);
}

TEST(History, CompletionsCountBeyondRuntimeWindow) {
  // The FC count #(f, -T) counts *all* completions in the sliding time
  // window, not just those still inside the 10-sample runtime window.
  RuntimeHistory h(2);
  for (int i = 0; i < 30; ++i) {
    h.record_runtime(1, 0.1, static_cast<double>(i));
  }
  EXPECT_EQ(h.completions_within(1, 60.0, 30.0), 30u);
  EXPECT_EQ(h.samples(1), 2u);
}

TEST(History, NoPruningWithoutRegisteredWindow) {
  RuntimeHistory h(10);
  for (int i = 0; i < 1000; ++i) {
    h.record_runtime(1, 0.1, static_cast<double>(i));
  }
  EXPECT_EQ(h.completions_stored(1), 1000u)
      << "unregistered histories keep every timestamp (arbitrary queries "
         "stay exact)";
}

TEST(History, RegisteredWindowBoundsCompletionMemory) {
  RuntimeHistory h(10);
  h.register_fc_window(60.0);
  for (int i = 0; i < 10000; ++i) {
    h.record_runtime(1, 0.1, static_cast<double>(i));
  }
  // One completion per second: at most ~61 timestamps can be within any
  // 60-second query window ending at or after the newest completion.
  EXPECT_LE(h.completions_stored(1), 62u);
  EXPECT_EQ(h.completions_within(1, 60.0, 10000.0), 60u);
}

TEST(History, PruningKeepsWindowQueriesExact) {
  RuntimeHistory h(10);
  h.register_fc_window(60.0);
  RuntimeHistory unpruned(10);
  for (int i = 0; i < 5000; ++i) {
    const double t = 0.37 * i;
    h.record_runtime(2, 0.1, t);
    unpruned.record_runtime(2, 0.1, t);
    if (i % 100 == 0) {
      for (double w : {5.0, 30.0, 60.0}) {
        ASSERT_EQ(h.completions_within(2, w, t),
                  unpruned.completions_within(2, w, t));
      }
    }
  }
}

TEST(History, LargestRegisteredWindowWins) {
  RuntimeHistory h(10);
  h.register_fc_window(10.0);
  h.register_fc_window(60.0);
  h.register_fc_window(30.0);  // smaller than the current max: no effect
  for (int i = 0; i < 200; ++i) {
    h.record_runtime(1, 0.1, static_cast<double>(i));
  }
  // Timestamps within the 60 s horizon must all survive.
  EXPECT_EQ(h.completions_within(1, 60.0, 199.0), 61u);
}

TEST(History, ArrivalsNotStoredWithoutRegisteredWindow) {
  // The node hot path records arrivals into unregistered histories; the
  // timestamps must not pile up there (only the autoscaler's dedicated
  // controller history registers an arrival window).
  RuntimeHistory h(10);
  for (int i = 0; i < 1000; ++i) {
    h.record_arrival(1, static_cast<double>(i));
  }
  EXPECT_EQ(h.arrivals_stored(1), 0u);
  EXPECT_DOUBLE_EQ(h.previous_arrival(1), 999.0)
      << "the SEPT inter-arrival estimate still sees the last arrival";
}

TEST(History, ArrivalsWithinCountsTheSlidingWindow) {
  RuntimeHistory h(10);
  h.register_arrival_window(30.0);
  for (int i = 0; i < 20; ++i) {
    h.record_arrival(1, static_cast<double>(i));
  }
  // Arrivals 0..19; the window is inclusive at its left edge, so [9, 19]
  // holds 11 and a window reaching past the first arrival holds all 20.
  EXPECT_EQ(h.arrivals_within(1, 10.0, 19.0), 11u);
  EXPECT_EQ(h.arrivals_within(1, 30.0, 19.0), 20u);
  EXPECT_EQ(h.arrivals_within(2, 10.0, 19.0), 0u);
}

TEST(History, ArrivalWindowBoundsArrivalMemory) {
  RuntimeHistory h(10);
  h.register_arrival_window(30.0);
  for (int i = 0; i < 10000; ++i) {
    h.record_arrival(1, static_cast<double>(i));
  }
  EXPECT_LE(h.arrivals_stored(1), 32u);
  EXPECT_EQ(h.arrivals_within(1, 30.0, 10000.0), 30u);
}

TEST(History, LargestArrivalWindowWins) {
  RuntimeHistory h(10);
  h.register_arrival_window(5.0);
  h.register_arrival_window(40.0);
  h.register_arrival_window(10.0);  // smaller than the current max: no-op
  for (int i = 0; i < 100; ++i) {
    h.record_arrival(1, static_cast<double>(i));
  }
  EXPECT_EQ(h.arrivals_within(1, 40.0, 100.0), 40u);
}

TEST(HistoryDeath, ArrivalQueryWithoutRegisteredWindowAborts) {
  RuntimeHistory h(10);
  h.record_arrival(1, 5.0);
  // Nothing was stored, so any windowed count would silently be 0.
  EXPECT_DEATH((void)h.arrivals_within(1, 10.0, 5.0), "");
}

TEST(HistoryDeath, ArrivalQueryWiderThanHorizonAborts) {
  RuntimeHistory h(10);
  h.register_arrival_window(30.0);
  h.record_arrival(1, 100.0);
  EXPECT_DEATH((void)h.arrivals_within(1, 60.0, 100.0), "");
}

TEST(HistoryDeath, QueryWiderThanRegisteredHorizonAborts) {
  RuntimeHistory h(10);
  h.register_fc_window(60.0);
  h.record_runtime(1, 0.1, 100.0);
  // Timestamps past the horizon may already be pruned; a wider query must
  // fail loudly instead of silently undercounting.
  EXPECT_DEATH(h.completions_within(1, 120.0, 100.0), "horizon");
}

TEST(HistoryDeath, NegativeRuntimeAborts) {
  RuntimeHistory h(10);
  EXPECT_DEATH(h.record_runtime(1, -1.0, 0.0), "negative");
}

TEST(HistoryDeath, OutOfOrderCompletionsAbort) {
  RuntimeHistory h(10);
  h.record_runtime(1, 0.1, 10.0);
  EXPECT_DEATH(h.record_runtime(1, 0.1, 5.0), "order");
}

// Property: the estimate always lies within [min, max] of the recorded
// samples in the window.
class HistoryBounds : public ::testing::TestWithParam<int> {};

TEST_P(HistoryBounds, EstimateWithinSampleRange) {
  RuntimeHistory h(10);
  unsigned state = static_cast<unsigned>(GetParam()) * 31u + 17u;
  double lo = 1e30, hi = 0.0;
  std::vector<double> window;
  for (int i = 0; i < 40; ++i) {
    state = state * 1664525u + 1013904223u;
    const double r = 0.01 + static_cast<double>(state % 1000) / 100.0;
    h.record_runtime(1, r, static_cast<double>(i));
    window.push_back(r);
    if (window.size() > 10) window.erase(window.begin());
    lo = *std::min_element(window.begin(), window.end());
    hi = *std::max_element(window.begin(), window.end());
    ASSERT_GE(h.expected_runtime(1), lo - 1e-12);
    ASSERT_LE(h.expected_runtime(1), hi + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistoryBounds, ::testing::Range(0, 5));

}  // namespace
}  // namespace whisk::core
