// whisk_sweep — run a declarative campaign grid from the command line:
// grid in, progress out, per-cell and aggregated tables/CSV/JSONL out.
//
//   whisk_sweep "schedulers=baseline/fifo,ours/sept;
//                scenarios=uniform?intensity=30,uniform?intensity=60;
//                seeds=0..4" --threads 4 --cells-csv cells.csv
//
// Output is byte-identical for any --threads value (campaign determinism
// contract): cells are seeded from their grid coordinates alone and file
// sinks consume them in cell-index order.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/autoscaler.h"
#include "cluster/balancer_registry.h"
#include "cluster/fault.h"
#include "cluster/resilience.h"
#include "container/keep_alive.h"
#include "core/policy_registry.h"
#include "experiments/campaign.h"
#include "experiments/distributed.h"
#include "metrics/sink.h"
#include "node/invoker_registry.h"
#include "util/parse.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/scenario_registry.h"
#include "workload/workflow.h"

using namespace whisk;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s \"<grid>\" [options]\n"
      "\n"
      "grid axes (semicolon-separated `axis=item,item,...`):\n"
      "  schedulers=invoker[/policy[/balancer]],...\n"
      "  scenarios=name[?key=value&...],...\n"
      "  seeds=0..4 | seeds=0,1,7      nodes=1,2   cores=10,20\n"
      "  memory-mb=2048,32768          override:<knob>=v1,v2\n"
      "  clusters=node:4,big:2?cores=16+small:4|keep-alive=ttl?idle-s=300\n"
      "    (ClusterSpec compact form: '+' for list ',', '|' for section "
      "';')\n"
      "  autoscalers=none,target-util?low=0.3&high=0.85,queue-depth\n"
      "    (closed-loop scaling, crossed with every deployment)\n"
      "  faults=none,crash-restart?mtbf-s=120+slow-node?factor=4\n"
      "    (fault regimes, '+'-joined FaultSpec lists; pair with a\n"
      "     resilience= section in the clusters items)\n"
      "  workflows=none,chain?stages=4,fanout?width=8&join=all\n"
      "    (composite-function DAGs rooted at every scenario call;\n"
      "     dag edge lists use '+': dag?edges=a>b+a>c)\n"
      "\n"
      "options:\n"
      "  --threads N        worker threads (default: all cores)\n"
      "  --cells-csv F      per-cell summary CSV\n"
      "  --cells-jsonl F    per-cell summary JSON Lines\n"
      "  --records-csv F    full per-call record CSV (streamed)\n"
      "  --records-jsonl F  full per-call record JSON Lines (streamed)\n"
      "  --no-samples       bounded memory: streaming summaries only\n"
      "  --reservoir N      quantile reservoir capacity (default 4096)\n"
      "  --quiet            no progress, no per-cell table\n"
      "  --list             print every registered component name and exit\n"
      "\n"
      "distributed campaigns (merged output is byte-identical to a\n"
      "single-process run at any worker count):\n"
      "  --workers N        shard the grid across N worker processes,\n"
      "                     merge deterministically (crashed shards are\n"
      "                     re-run; workers use --threads each, default 1)\n"
      "  --shard i/n        run only shard i of n (group-aligned slice;\n"
      "                     global cell indices/seeds, CSV keeps a header)\n"
      "  --merge OUT F...   merge per-shard --cells-csv/--cells-jsonl\n"
      "                     partials (shard order) into OUT and exit\n"
      "  --verbose          in --workers runs: forward worker stderr\n"
      "  --worker           internal: speak the worker wire protocol on\n"
      "                     stdout (spawned by --workers drivers)\n",
      argv0);
  return 2;
}

// One-stop discoverability: every name each registry will accept in a grid
// (mirrors scenario_catalog, which additionally documents per-scenario
// parameters).
int list_registries() {
  auto section = [](const char* kind, const std::vector<std::string>& names) {
    std::printf("%s:\n", kind);
    for (const auto& name : names) std::printf("  %s\n", name.c_str());
  };
  section("invokers (schedulers=<invoker>/...)",
          whisk::node::InvokerRegistry::instance().names());
  section("policies (schedulers=.../<policy>/...)",
          whisk::core::PolicyRegistry::instance().names());
  section("balancers (schedulers=.../.../<balancer>)",
          whisk::cluster::BalancerRegistry::instance().names());
  section("scenarios (scenarios=<name>?...)",
          whisk::workload::ScenarioRegistry::instance().names());
  std::printf("keep-alive policies (clusters=...|keep-alive=<name>?...):\n");
  auto& keep_alive = whisk::container::KeepAlivePolicyRegistry::instance();
  for (const auto& name : keep_alive.names()) {
    std::printf("  %s\n", name.c_str());
    const auto policy =
        keep_alive.create(name, whisk::container::KeepAliveSpec{name, {}});
    for (const auto& param : policy->params()) {
      std::printf("    %s (default %s): %s\n", param.name.c_str(),
                  param.default_value.c_str(), param.help.c_str());
    }
  }
  std::printf("autoscalers (autoscalers=<name>?...):\n");
  auto& autoscalers = whisk::cluster::AutoscalerRegistry::instance();
  for (const auto& name : autoscalers.names()) {
    const auto controller = autoscalers.create(
        name, whisk::cluster::AutoscalerSpec{name, {}});
    std::printf("  %s: %s\n", name.c_str(), controller->help().c_str());
    for (const auto& param : whisk::cluster::common_autoscaler_params()) {
      std::printf("    %s (default %s): %s\n", param.name.c_str(),
                  param.default_value.c_str(), param.help.c_str());
    }
    for (const auto& param : controller->params()) {
      std::printf("    %s (default %s): %s\n", param.name.c_str(),
                  param.default_value.c_str(), param.help.c_str());
    }
  }
  std::printf("faults (faults=<name>?...+...):\n");
  auto& faults = whisk::cluster::FaultRegistry::instance();
  for (const auto& name : faults.names()) {
    const auto process =
        faults.create(name, whisk::cluster::FaultSpec{name, {}});
    std::printf("  %s: %s\n", name.c_str(), process->help().c_str());
    for (const auto& param : process->params()) {
      std::printf("    %s (default %s): %s\n", param.name.c_str(),
                  param.default_value.c_str(), param.help.c_str());
    }
  }
  std::printf("resilience knobs (clusters=...|resilience=k=v&...):\n");
  for (const auto& param : whisk::cluster::resilience_params()) {
    std::printf("  %s (default %s): %s\n", param.name.c_str(),
                param.default_value.c_str(), param.help.c_str());
  }
  std::printf("workflows (workflows=<name>?...):\n");
  auto& workflows = whisk::workload::WorkflowRegistry::instance();
  for (const auto& name : workflows.names()) {
    const auto def = workflows.create(name);
    std::printf("  %s: %s\n", name.c_str(), def->help().c_str());
    for (const auto& param : def->params()) {
      std::printf("    %s (default %s): %s\n", param.name.c_str(),
                  param.default_value.c_str(), param.help.c_str());
    }
  }
  return 0;
}

// Offline deterministic merge of per-shard partial files written by
// separate `--shard i/n --cells-csv/--cells-jsonl` runs (e.g. shards run
// on different machines). Inputs must be listed in shard order. CSV
// partials each carry the header row: the merge keeps the first and
// verifies the rest match; JSONL (first byte '{') is plain concatenation.
int merge_partials(const std::string& out_path,
                   const std::vector<std::string>& inputs) {
  if (inputs.empty()) {
    std::fprintf(stderr, "--merge needs at least one input file\n");
    return 2;
  }
  std::string merged;
  std::string csv_header;
  bool jsonl = false;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::ifstream in(inputs[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", inputs[i].c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();
    if (i == 0) {
      jsonl = !data.empty() && data.front() == '{';
      if (!jsonl) {
        const std::size_t nl = data.find('\n');
        if (nl == std::string::npos) {
          std::fprintf(stderr, "%s has no CSV header row\n",
                       inputs[i].c_str());
          return 1;
        }
        csv_header = data.substr(0, nl + 1);
      }
      merged = data;
      continue;
    }
    if (jsonl) {
      merged += data;
      continue;
    }
    const std::size_t nl = data.find('\n');
    if (nl == std::string::npos || data.substr(0, nl + 1) != csv_header) {
      std::fprintf(stderr, "%s does not share the first input's CSV header\n",
                   inputs[i].c_str());
      return 1;
    }
    merged.append(data, nl + 1, std::string::npos);
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << merged;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string cells_csv_path;
  std::string cells_jsonl_path;
  std::string records_csv_path;
  std::string records_jsonl_path;
  std::string shard_selector;
  std::string merge_out;
  int workers = 0;  // 0 = single-process (no distribution)
  bool worker_mode = false;
  bool verbose = false;
  bool threads_given = false;
  experiments::CampaignOptions opts;
  // CLI default: all cores (the library default stays 1 thread). Output is
  // byte-identical for any thread count, so parallelism is free here.
  opts.threads = 0;
  bool quiet = false;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", argv[i]);
      std::exit(usage(argv[0]));
    }
    return argv[++i];
  };
  // Strict whole number (atoi would turn "--threads four" into 0 silently).
  auto need_count = [&](int& i) -> int {
    const char* flag = argv[i];
    const char* text = need_value(i);
    unsigned long long value = 0;
    if (!util::parse_whole_number(text, &value) || value > 1000000) {
      std::fprintf(stderr, "%s needs a whole number, got \"%s\"\n", flag,
                   text);
      std::exit(usage(argv[0]));
    }
    return static_cast<int>(value);
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0) {
      opts.threads = need_count(i);
      threads_given = true;
    } else if (std::strcmp(arg, "--workers") == 0) {
      workers = need_count(i);
      if (workers == 0) {
        std::fprintf(stderr, "--workers needs a value > 0\n");
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--shard") == 0) {
      shard_selector = need_value(i);
    } else if (std::strcmp(arg, "--worker") == 0) {
      worker_mode = true;
    } else if (std::strcmp(arg, "--merge") == 0) {
      merge_out = need_value(i);
    } else if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(arg, "--cells-csv") == 0) {
      cells_csv_path = need_value(i);
    } else if (std::strcmp(arg, "--cells-jsonl") == 0) {
      cells_jsonl_path = need_value(i);
    } else if (std::strcmp(arg, "--records-csv") == 0) {
      records_csv_path = need_value(i);
    } else if (std::strcmp(arg, "--records-jsonl") == 0) {
      records_jsonl_path = need_value(i);
    } else if (std::strcmp(arg, "--no-samples") == 0) {
      opts.retain_samples = false;
    } else if (std::strcmp(arg, "--reservoir") == 0) {
      const int cap = need_count(i);
      if (cap == 0) {
        std::fprintf(stderr, "--reservoir needs a value > 0\n");
        return usage(argv[0]);
      }
      opts.reservoir_capacity = static_cast<std::size_t>(cap);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      return list_registries();
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      return usage(argv[0]);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg);
      return usage(argv[0]);
    } else {
      positional.emplace_back(arg);
    }
  }

  // Offline merge mode: positionals are the per-shard partial files.
  if (!merge_out.empty()) return merge_partials(merge_out, positional);

  if (positional.size() > 1) {
    std::fprintf(stderr, "more than one grid argument\n");
    return usage(argv[0]);
  }
  if (positional.empty()) return usage(argv[0]);
  const std::string grid_text = positional.front();

  if (worker_mode && shard_selector.empty()) {
    std::fprintf(stderr, "--worker needs --shard i/n\n");
    return usage(argv[0]);
  }
  if (workers > 0 && !shard_selector.empty()) {
    std::fprintf(stderr, "--workers and --shard are mutually exclusive "
                         "(the driver assigns shards)\n");
    return usage(argv[0]);
  }
  if (workers > 0 &&
      (!records_csv_path.empty() || !records_jsonl_path.empty())) {
    std::fprintf(stderr, "--records-csv/--records-jsonl do not combine with "
                         "--workers (per-call record streaming is "
                         "single-process)\n");
    return usage(argv[0]);
  }

  const auto cat = workload::sebs_catalog();
  const auto spec = experiments::CampaignSpec::parse(grid_text);

  // Worker mode: run the assigned shard and speak the wire protocol on
  // stdout. Silent on stderr unless the driver forwarded --verbose.
  if (worker_mode) {
    const auto [shard_i, shard_n] =
        experiments::ShardRange::parse_selector(shard_selector);
    experiments::DistributedOptions dopts;
    dopts.worker_threads = threads_given ? opts.threads : 1;
    dopts.retain_samples = opts.retain_samples;
    dopts.reservoir_capacity = opts.reservoir_capacity;
    dopts.verbose = verbose;
    experiments::run_worker_protocol(spec, cat, shard_i, shard_n, dopts, 1);
    return 0;
  }

  // Driver mode: shard the grid across worker processes (self-invocations
  // of this binary) and merge their output deterministically.
  if (workers > 0) {
    experiments::DistributedOptions dopts;
    dopts.workers = workers;
    dopts.worker_threads = threads_given ? opts.threads : 1;
    dopts.retain_samples = opts.retain_samples;
    dopts.reservoir_capacity = opts.reservoir_capacity;
    dopts.verbose = verbose;
    dopts.worker_command = {argv[0], grid_text, "--threads",
                           std::to_string(dopts.worker_threads),
                           "--reservoir",
                           std::to_string(dopts.reservoir_capacity)};
    if (!dopts.retain_samples) dopts.worker_command.push_back("--no-samples");
    if (verbose) dopts.worker_command.push_back("--verbose");

    if (!quiet) {
      std::fprintf(stderr, "campaign: %s\n", spec.to_string().c_str());
      std::fprintf(stderr,
                   "cells: %zu (%zu groups x %zu seeds), workers: %d x %d "
                   "threads\n",
                   spec.size(), spec.group_count(), spec.seeds_per_group(),
                   workers, dopts.worker_threads);
    }
    const auto result = experiments::run_distributed(spec, cat, dopts);
    for (const auto& shard : result.shards) {
      if (shard.attempts > 1 && !quiet) {
        std::fprintf(stderr, "shard %s needed %d attempts\n",
                     shard.range.selector().c_str(), shard.attempts);
      }
    }

    util::Table agg({"group", "seeds", "calls", "avg R", "p50 R", "p95 R",
                     "p99 R", "avg S", "p50 S", "max c(i)", "cold"});
    const std::size_t per = result.spec.seeds_per_group();
    for (const auto& g : result.groups) {
      const util::Summary r = g.response.summary();
      const util::Summary s = g.stretch.summary();
      agg.add_row({result.spec.label(result.spec.coordinates(g.group * per),
                                     /*with_seed=*/false),
                   std::to_string(per), std::to_string(r.count),
                   util::fmt(r.mean), util::fmt(r.p50), util::fmt(r.p95),
                   util::fmt(r.p99), util::fmt(s.mean, 1),
                   util::fmt(s.p50, 1), util::fmt(g.max_completion),
                   std::to_string(g.cold_starts)});
    }
    std::printf("%s", agg.to_string().c_str());
    if (!quiet) {
      std::fprintf(stderr, "peak worker rss: %ld kb\n",
                   result.peak_worker_rss_kb);
    }

    if (!cells_csv_path.empty()) {
      std::ofstream out(cells_csv_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", cells_csv_path.c_str());
        return 1;
      }
      out << result.cells_csv;
      if (!quiet) std::fprintf(stderr, "wrote %s\n", cells_csv_path.c_str());
    }
    if (!cells_jsonl_path.empty()) {
      std::ofstream out(cells_jsonl_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", cells_jsonl_path.c_str());
        return 1;
      }
      out << result.cells_jsonl;
      if (!quiet) {
        std::fprintf(stderr, "wrote %s\n", cells_jsonl_path.c_str());
      }
    }
    return 0;
  }

  // Single-process path, optionally restricted to one shard of the grid.
  std::string shard_prefix;
  if (!shard_selector.empty()) {
    const auto [shard_i, shard_n] =
        experiments::ShardRange::parse_selector(shard_selector);
    opts.shard = spec.shard(shard_i, shard_n);
    shard_prefix = "[shard " + opts.shard->selector() + "] ";
  }
  const std::size_t total =
      opts.shard ? opts.shard->cells() : spec.size();
  const int threads = opts.threads == 0
                          ? util::ThreadPool::hardware_threads()
                          : opts.threads;
  if (!quiet) {
    std::fprintf(stderr, "%scampaign: %s\n", shard_prefix.c_str(),
                 spec.to_string().c_str());
    // The *effective* worker count (after the 0 = all-cores default), so a
    // log always records how the grid actually ran.
    std::fprintf(stderr,
                 "%scells: %zu of %zu (%zu groups x %zu seeds), threads: %d "
                 "of %d hardware\n",
                 shard_prefix.c_str(), total, spec.size(), spec.group_count(),
                 spec.seeds_per_group(), threads,
                 util::ThreadPool::hardware_threads());
  }

  // Per-record streaming sinks, fed in cell order while the campaign runs.
  metrics::MetricsPipeline pipeline;
  std::ofstream records_csv;
  std::ofstream records_jsonl;
  if (!records_csv_path.empty()) {
    records_csv.open(records_csv_path);
    if (!records_csv) {
      std::fprintf(stderr, "cannot write %s\n", records_csv_path.c_str());
      return 1;
    }
    pipeline.emplace<metrics::CsvSink>(records_csv, cat);
  }
  if (!records_jsonl_path.empty()) {
    records_jsonl.open(records_jsonl_path);
    if (!records_jsonl) {
      std::fprintf(stderr, "cannot write %s\n", records_jsonl_path.c_str());
      return 1;
    }
    pipeline.emplace<metrics::JsonlSink>(records_jsonl, cat);
  }
  if (pipeline.size() > 0) opts.pipeline = &pipeline;

  if (!quiet) {
    const std::size_t step = total <= 100 ? 1 : total / 100;
    // Sharded runs print whole lines with the shard id up front (several
    // shards may share one terminal); plain runs keep the \r ticker.
    opts.progress = [step, total, shard_prefix](std::size_t done,
                                                std::size_t all) {
      if (done % step == 0 || done == all) {
        if (shard_prefix.empty()) {
          std::fprintf(stderr, "\r[%zu/%zu] cells done", done, total);
          if (done == all) std::fprintf(stderr, "\n");
        } else {
          std::fprintf(stderr, "%s%zu/%zu cells done\n",
                       shard_prefix.c_str(), done, total);
        }
      }
    };
  }

  const auto result = experiments::run_campaign(spec, cat, opts);

  // Per-cell table (small grids only; the CSV/JSONL carry the full detail).
  if (!quiet && total <= 64) {
    util::Table table({"cell", "label", "calls", "avg R", "p50 R", "p95 R",
                       "avg S", "max c(i)", "cold"});
    for (const auto& cell : result.cells) {
      const auto r = cell.response_summary();
      const auto s = cell.stretch_summary();
      table.add_row({std::to_string(cell.index),
                     spec.label(spec.coordinates(cell.index)),
                     std::to_string(cell.calls), util::fmt(r.mean),
                     util::fmt(r.p50), util::fmt(r.p95), util::fmt(s.mean, 1),
                     util::fmt(cell.max_completion),
                     std::to_string(cell.stats.cold_starts)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Aggregated per-group table (seeds pooled).
  util::Table agg({"group", "seeds", "calls", "avg R", "p50 R", "p95 R",
                   "p99 R", "avg S", "p50 S", "max c(i)", "cold"});
  for (std::size_t g = 0; g < result.group_count(); ++g) {
    const auto cells = result.group(g);
    const util::Summary r =
        opts.retain_samples
            ? util::summarize(experiments::pooled_responses(cells))
            : experiments::aggregate_responses(cells).summary();
    const util::Summary s =
        opts.retain_samples
            ? util::summarize(experiments::pooled_stretches(cells))
            : experiments::aggregate_stretches(cells).summary();
    const auto stats = experiments::total_stats(cells);
    agg.add_row({result.group_label(g), std::to_string(cells.size()),
                 std::to_string(r.count), util::fmt(r.mean),
                 util::fmt(r.p50), util::fmt(r.p95), util::fmt(r.p99),
                 util::fmt(s.mean, 1), util::fmt(s.p50, 1),
                 util::fmt(experiments::max_completion(cells)),
                 std::to_string(stats.cold_starts)});
  }
  std::printf("%s", agg.to_string().c_str());

  if (!cells_csv_path.empty()) {
    std::ofstream out(cells_csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cells_csv_path.c_str());
      return 1;
    }
    out << experiments::cells_csv(result);
    if (!quiet) {
      std::fprintf(stderr, "wrote %s\n", cells_csv_path.c_str());
    }
  }
  if (!cells_jsonl_path.empty()) {
    std::ofstream out(cells_jsonl_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cells_jsonl_path.c_str());
      return 1;
    }
    out << experiments::cells_jsonl(result);
    if (!quiet) {
      std::fprintf(stderr, "wrote %s\n", cells_jsonl_path.c_str());
    }
  }
  return 0;
}
