// whisk_sweep — run a declarative campaign grid from the command line:
// grid in, progress out, per-cell and aggregated tables/CSV/JSONL out.
//
//   whisk_sweep "schedulers=baseline/fifo,ours/sept;
//                scenarios=uniform?intensity=30,uniform?intensity=60;
//                seeds=0..4" --threads 4 --cells-csv cells.csv
//
// Output is byte-identical for any --threads value (campaign determinism
// contract): cells are seeded from their grid coordinates alone and file
// sinks consume them in cell-index order.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "cluster/autoscaler.h"
#include "cluster/balancer_registry.h"
#include "cluster/fault.h"
#include "cluster/resilience.h"
#include "container/keep_alive.h"
#include "core/policy_registry.h"
#include "experiments/campaign.h"
#include "metrics/sink.h"
#include "node/invoker_registry.h"
#include "util/parse.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/scenario_registry.h"
#include "workload/workflow.h"

using namespace whisk;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s \"<grid>\" [options]\n"
      "\n"
      "grid axes (semicolon-separated `axis=item,item,...`):\n"
      "  schedulers=invoker[/policy[/balancer]],...\n"
      "  scenarios=name[?key=value&...],...\n"
      "  seeds=0..4 | seeds=0,1,7      nodes=1,2   cores=10,20\n"
      "  memory-mb=2048,32768          override:<knob>=v1,v2\n"
      "  clusters=node:4,big:2?cores=16+small:4|keep-alive=ttl?idle-s=300\n"
      "    (ClusterSpec compact form: '+' for list ',', '|' for section "
      "';')\n"
      "  autoscalers=none,target-util?low=0.3&high=0.85,queue-depth\n"
      "    (closed-loop scaling, crossed with every deployment)\n"
      "  faults=none,crash-restart?mtbf-s=120+slow-node?factor=4\n"
      "    (fault regimes, '+'-joined FaultSpec lists; pair with a\n"
      "     resilience= section in the clusters items)\n"
      "  workflows=none,chain?stages=4,fanout?width=8&join=all\n"
      "    (composite-function DAGs rooted at every scenario call;\n"
      "     dag edge lists use '+': dag?edges=a>b+a>c)\n"
      "\n"
      "options:\n"
      "  --threads N        worker threads (default: all cores)\n"
      "  --cells-csv F      per-cell summary CSV\n"
      "  --cells-jsonl F    per-cell summary JSON Lines\n"
      "  --records-csv F    full per-call record CSV (streamed)\n"
      "  --records-jsonl F  full per-call record JSON Lines (streamed)\n"
      "  --no-samples       bounded memory: streaming summaries only\n"
      "  --reservoir N      quantile reservoir capacity (default 4096)\n"
      "  --quiet            no progress, no per-cell table\n"
      "  --list             print every registered component name and exit\n",
      argv0);
  return 2;
}

// One-stop discoverability: every name each registry will accept in a grid
// (mirrors scenario_catalog, which additionally documents per-scenario
// parameters).
int list_registries() {
  auto section = [](const char* kind, const std::vector<std::string>& names) {
    std::printf("%s:\n", kind);
    for (const auto& name : names) std::printf("  %s\n", name.c_str());
  };
  section("invokers (schedulers=<invoker>/...)",
          whisk::node::InvokerRegistry::instance().names());
  section("policies (schedulers=.../<policy>/...)",
          whisk::core::PolicyRegistry::instance().names());
  section("balancers (schedulers=.../.../<balancer>)",
          whisk::cluster::BalancerRegistry::instance().names());
  section("scenarios (scenarios=<name>?...)",
          whisk::workload::ScenarioRegistry::instance().names());
  std::printf("keep-alive policies (clusters=...|keep-alive=<name>?...):\n");
  auto& keep_alive = whisk::container::KeepAlivePolicyRegistry::instance();
  for (const auto& name : keep_alive.names()) {
    std::printf("  %s\n", name.c_str());
    const auto policy =
        keep_alive.create(name, whisk::container::KeepAliveSpec{name, {}});
    for (const auto& param : policy->params()) {
      std::printf("    %s (default %s): %s\n", param.name.c_str(),
                  param.default_value.c_str(), param.help.c_str());
    }
  }
  std::printf("autoscalers (autoscalers=<name>?...):\n");
  auto& autoscalers = whisk::cluster::AutoscalerRegistry::instance();
  for (const auto& name : autoscalers.names()) {
    const auto controller = autoscalers.create(
        name, whisk::cluster::AutoscalerSpec{name, {}});
    std::printf("  %s: %s\n", name.c_str(), controller->help().c_str());
    for (const auto& param : whisk::cluster::common_autoscaler_params()) {
      std::printf("    %s (default %s): %s\n", param.name.c_str(),
                  param.default_value.c_str(), param.help.c_str());
    }
    for (const auto& param : controller->params()) {
      std::printf("    %s (default %s): %s\n", param.name.c_str(),
                  param.default_value.c_str(), param.help.c_str());
    }
  }
  std::printf("faults (faults=<name>?...+...):\n");
  auto& faults = whisk::cluster::FaultRegistry::instance();
  for (const auto& name : faults.names()) {
    const auto process =
        faults.create(name, whisk::cluster::FaultSpec{name, {}});
    std::printf("  %s: %s\n", name.c_str(), process->help().c_str());
    for (const auto& param : process->params()) {
      std::printf("    %s (default %s): %s\n", param.name.c_str(),
                  param.default_value.c_str(), param.help.c_str());
    }
  }
  std::printf("resilience knobs (clusters=...|resilience=k=v&...):\n");
  for (const auto& param : whisk::cluster::resilience_params()) {
    std::printf("  %s (default %s): %s\n", param.name.c_str(),
                param.default_value.c_str(), param.help.c_str());
  }
  std::printf("workflows (workflows=<name>?...):\n");
  auto& workflows = whisk::workload::WorkflowRegistry::instance();
  for (const auto& name : workflows.names()) {
    const auto def = workflows.create(name);
    std::printf("  %s: %s\n", name.c_str(), def->help().c_str());
    for (const auto& param : def->params()) {
      std::printf("    %s (default %s): %s\n", param.name.c_str(),
                  param.default_value.c_str(), param.help.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid_text;
  std::string cells_csv_path;
  std::string cells_jsonl_path;
  std::string records_csv_path;
  std::string records_jsonl_path;
  experiments::CampaignOptions opts;
  // CLI default: all cores (the library default stays 1 thread). Output is
  // byte-identical for any thread count, so parallelism is free here.
  opts.threads = 0;
  bool quiet = false;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", argv[i]);
      std::exit(usage(argv[0]));
    }
    return argv[++i];
  };
  // Strict whole number (atoi would turn "--threads four" into 0 silently).
  auto need_count = [&](int& i) -> int {
    const char* flag = argv[i];
    const char* text = need_value(i);
    unsigned long long value = 0;
    if (!util::parse_whole_number(text, &value) || value > 1000000) {
      std::fprintf(stderr, "%s needs a whole number, got \"%s\"\n", flag,
                   text);
      std::exit(usage(argv[0]));
    }
    return static_cast<int>(value);
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0) {
      opts.threads = need_count(i);
    } else if (std::strcmp(arg, "--cells-csv") == 0) {
      cells_csv_path = need_value(i);
    } else if (std::strcmp(arg, "--cells-jsonl") == 0) {
      cells_jsonl_path = need_value(i);
    } else if (std::strcmp(arg, "--records-csv") == 0) {
      records_csv_path = need_value(i);
    } else if (std::strcmp(arg, "--records-jsonl") == 0) {
      records_jsonl_path = need_value(i);
    } else if (std::strcmp(arg, "--no-samples") == 0) {
      opts.retain_samples = false;
    } else if (std::strcmp(arg, "--reservoir") == 0) {
      const int cap = need_count(i);
      if (cap == 0) {
        std::fprintf(stderr, "--reservoir needs a value > 0\n");
        return usage(argv[0]);
      }
      opts.reservoir_capacity = static_cast<std::size_t>(cap);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      return list_registries();
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      return usage(argv[0]);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg);
      return usage(argv[0]);
    } else if (grid_text.empty()) {
      grid_text = arg;
    } else {
      std::fprintf(stderr, "more than one grid argument\n");
      return usage(argv[0]);
    }
  }
  if (grid_text.empty()) return usage(argv[0]);

  const auto cat = workload::sebs_catalog();
  const auto spec = experiments::CampaignSpec::parse(grid_text);
  const std::size_t total = spec.size();
  const int threads = opts.threads == 0
                          ? util::ThreadPool::hardware_threads()
                          : opts.threads;
  if (!quiet) {
    std::fprintf(stderr, "campaign: %s\n", spec.to_string().c_str());
    // The *effective* worker count (after the 0 = all-cores default), so a
    // log always records how the grid actually ran.
    std::fprintf(stderr,
                 "cells: %zu (%zu groups x %zu seeds), threads: %d of %d "
                 "hardware\n",
                 total, spec.group_count(), spec.seeds_per_group(), threads,
                 util::ThreadPool::hardware_threads());
  }

  // Per-record streaming sinks, fed in cell order while the campaign runs.
  metrics::MetricsPipeline pipeline;
  std::ofstream records_csv;
  std::ofstream records_jsonl;
  if (!records_csv_path.empty()) {
    records_csv.open(records_csv_path);
    if (!records_csv) {
      std::fprintf(stderr, "cannot write %s\n", records_csv_path.c_str());
      return 1;
    }
    pipeline.emplace<metrics::CsvSink>(records_csv, cat);
  }
  if (!records_jsonl_path.empty()) {
    records_jsonl.open(records_jsonl_path);
    if (!records_jsonl) {
      std::fprintf(stderr, "cannot write %s\n", records_jsonl_path.c_str());
      return 1;
    }
    pipeline.emplace<metrics::JsonlSink>(records_jsonl, cat);
  }
  if (pipeline.size() > 0) opts.pipeline = &pipeline;

  if (!quiet) {
    const std::size_t step = total <= 100 ? 1 : total / 100;
    opts.progress = [step, total](std::size_t done, std::size_t all) {
      if (done % step == 0 || done == all) {
        std::fprintf(stderr, "\r[%zu/%zu] cells done", done, total);
        if (done == all) std::fprintf(stderr, "\n");
      }
    };
  }

  const auto result = experiments::run_campaign(spec, cat, opts);

  // Per-cell table (small grids only; the CSV/JSONL carry the full detail).
  if (!quiet && total <= 64) {
    util::Table table({"cell", "label", "calls", "avg R", "p50 R", "p95 R",
                       "avg S", "max c(i)", "cold"});
    for (const auto& cell : result.cells) {
      const auto r = cell.response_summary();
      const auto s = cell.stretch_summary();
      table.add_row({std::to_string(cell.index),
                     spec.label(spec.coordinates(cell.index)),
                     std::to_string(cell.calls), util::fmt(r.mean),
                     util::fmt(r.p50), util::fmt(r.p95), util::fmt(s.mean, 1),
                     util::fmt(cell.max_completion),
                     std::to_string(cell.stats.cold_starts)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Aggregated per-group table (seeds pooled).
  util::Table agg({"group", "seeds", "calls", "avg R", "p50 R", "p95 R",
                   "p99 R", "avg S", "p50 S", "max c(i)", "cold"});
  for (std::size_t g = 0; g < result.group_count(); ++g) {
    const auto cells = result.group(g);
    const util::Summary r =
        opts.retain_samples
            ? util::summarize(experiments::pooled_responses(cells))
            : experiments::aggregate_responses(cells).summary();
    const util::Summary s =
        opts.retain_samples
            ? util::summarize(experiments::pooled_stretches(cells))
            : experiments::aggregate_stretches(cells).summary();
    const auto stats = experiments::total_stats(cells);
    agg.add_row({result.group_label(g), std::to_string(cells.size()),
                 std::to_string(r.count), util::fmt(r.mean),
                 util::fmt(r.p50), util::fmt(r.p95), util::fmt(r.p99),
                 util::fmt(s.mean, 1), util::fmt(s.p50, 1),
                 util::fmt(experiments::max_completion(cells)),
                 std::to_string(stats.cold_starts)});
  }
  std::printf("%s", agg.to_string().c_str());

  if (!cells_csv_path.empty()) {
    std::ofstream out(cells_csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cells_csv_path.c_str());
      return 1;
    }
    out << experiments::cells_csv(result);
    if (!quiet) {
      std::fprintf(stderr, "wrote %s\n", cells_csv_path.c_str());
    }
  }
  if (!cells_jsonl_path.empty()) {
    std::ofstream out(cells_jsonl_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cells_jsonl_path.c_str());
      return 1;
    }
    out << experiments::cells_jsonl(result);
    if (!quiet) {
      std::fprintf(stderr, "wrote %s\n", cells_jsonl_path.c_str());
    }
  }
  return 0;
}
