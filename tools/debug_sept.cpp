// Scratch diagnostic: where do short calls wait under SEPT?
#include <cstdio>

#include "experiments/runner.h"
#include "util/stats.h"

using namespace whisk;

int main() {
  const auto cat = workload::sebs_catalog();
  const auto cfg = experiments::ExperimentSpec().cores(10).intensity(
      30).scheduler("baseline");
  const auto run = experiments::run_experiment(cfg, cat);

  // Per-function: avg queue wait (received->exec_start), avg exec, avg
  // response.
  for (const auto& spec : cat.specs()) {
    double wait = 0, exec = 0, resp = 0, post = 0;
    int n = 0;
    for (const auto& r : run.records) {
      if (r.function != spec.id) continue;
      wait += r.exec_start - r.received;
      exec += r.exec_end - r.exec_start;
      post += r.completion - r.exec_end;
      resp += r.response();
      ++n;
    }
    if (n == 0) continue;
    std::printf("%-18s n=%3d wait=%8.2f exec=%6.2f post=%6.2f resp=%8.2f\n",
                spec.name.c_str(), n, wait / n, exec / n, post / n, resp / n);
  }
  std::printf("cold=%zu prewarm=%zu warm=%zu evict=%zu\n",
              run.stats.cold_starts, run.stats.prewarm_starts,
              run.stats.warm_starts, run.stats.evictions);
  return 0;
}
