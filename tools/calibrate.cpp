// Calibration harness: runs a handful of key configurations and prints the
// simulated metrics next to the paper's measured values (Table III), so the
// NodeParams constants can be tuned to reproduce the paper's shapes.
#include <cstdio>
#include <string>

#include "experiments/campaign.h"
#include "util/stats.h"
#include "util/thread_pool.h"

using namespace whisk;

namespace {

struct Target {
  int cores;
  int intensity;
  const char* scheduler;  // "baseline" or policy name
  double paper_avg_r;     // Table III average response [s]
  double paper_p50_r;
  double paper_max_c;     // max completion [s]
  double paper_avg_s;     // average stretch
};

// Selected anchor rows from Table III.
const Target kTargets[] = {
    {5, 30, "baseline", 3.79, 0.49, 73.53, 18.40},
    {5, 30, "FIFO", 10.79, 10.97, 87.56, 267.49},
    {5, 120, "baseline", 120.51, 121.39, 345.26, 3399.50},
    {5, 120, "FIFO", 124.95, 124.89, 317.34, 3692.52},
    {10, 30, "baseline", 14.78, 2.82, 128.65, 261.61},
    {10, 30, "FIFO", 36.42, 37.97, 150.51, 1000.59},
    {10, 30, "SEPT", 12.52, 1.73, 174.91, 104.11},
    {10, 30, "FC", 10.67, 1.62, 150.75, 83.59},
    {10, 40, "baseline", 64.43, 61.00, 251.03, 1837.13},
    {10, 40, "FIFO", 58.29, 59.30, 194.84, 1647.40},
    {10, 40, "SEPT", 17.01, 1.53, 216.74, 130.87},
    {10, 60, "baseline", 123.36, 116.07, 369.25, 3608.83},
    {10, 60, "FIFO", 101.76, 102.51, 277.47, 2959.46},
    {10, 60, "SEPT", 25.14, 1.07, 314.87, 164.52},
    {10, 60, "EECT", 40.93, 14.05, 283.88, 766.19},
    {10, 60, "RECT", 40.42, 13.38, 274.04, 763.78},
    {10, 60, "FC", 22.65, 1.07, 280.89, 134.24},
    {10, 120, "baseline", 340.28, 334.90, 816.32, 10098.53},
    {10, 120, "FIFO", 233.94, 233.63, 540.65, 6893.03},
    {20, 30, "baseline", 157.13, 154.36, 421.43, 4656.11},
    {20, 30, "FIFO", 85.78, 85.75, 293.68, 2406.78},
    {20, 40, "baseline", 244.43, 242.17, 611.27, 7261.72},
    {20, 40, "FIFO", 123.64, 127.04, 363.43, 3538.65},
    {20, 40, "SEPT", 33.92, 1.21, 433.72, 220.89},
    {20, 120, "baseline", 833.48, 830.32, 1815.17, 24885.55},
    {20, 120, "FIFO", 441.81, 441.75, 1000.99, 13051.82},
    {20, 120, "FC", 91.91, 0.67, 1090.75, 526.71},
};

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 2;
  const auto cat = workload::sebs_catalog();

  std::printf(
      "%5s %4s %-8s | %9s %9s | %9s %9s | %9s %9s | %10s %10s | %6s\n",
      "cores", "int", "sched", "avgR_sim", "avgR_pap", "p50R_sim",
      "p50R_pap", "maxC_sim", "maxC_pap", "avgS_sim", "avgS_pap", "cold");
  experiments::CampaignOptions opts;
  opts.threads = util::ThreadPool::hardware_threads();
  for (const auto& t : kTargets) {
    // One single-group campaign per anchor row (the target list is sparse,
    // not a cross product); the pool still parallelizes over its seeds.
    experiments::CampaignSpec grid;
    grid.schedulers = {experiments::SchedulerSpec::parse(
        std::string(t.scheduler) == "baseline"
            ? "baseline/fifo"
            : "ours/" + std::string(t.scheduler))};
    grid.scenarios = {workload::ScenarioSpec::parse(
        "uniform?intensity=" + std::to_string(t.intensity))};
    grid.cores = {t.cores};
    grid.seeds = experiments::CampaignSpec::first_seeds(reps);
    const auto result = experiments::run_campaign(grid, cat, opts);
    const auto cells = result.group(0);
    const auto sum_r =
        util::summarize(experiments::pooled_responses(cells));
    const auto sum_s =
        util::summarize(experiments::pooled_stretches(cells));
    const double max_c = experiments::max_completion(cells);
    const std::size_t cold = experiments::total_stats(cells).cold_starts;
    std::printf(
        "%5d %4d %-8s | %9.2f %9.2f | %9.2f %9.2f | %9.1f %9.1f | %10.1f "
        "%10.1f | %6zu\n",
        t.cores, t.intensity, t.scheduler, sum_r.mean, t.paper_avg_r,
        sum_r.p50, t.paper_p50_r, max_c, t.paper_max_c, sum_s.mean,
        t.paper_avg_s, cold / cells.size());
  }
  return 0;
}
