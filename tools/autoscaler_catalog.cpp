// Prints every registered autoscaler: its help line, the driver-level
// parameters every controller accepts (tick-s, cooldown-s), its own
// declared parameters with defaults, and — for controllers that decide
// from the current observation alone — a small decision table showing the
// desired node count across load levels on a 4-node, 10-core group.
// History-driven controllers (predictive) skip the table: their answer
// depends on the arrival record, not a single snapshot.
//
// Usage: autoscaler_catalog [nodes] [cores]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "cluster/autoscaler.h"

using namespace whisk;

namespace {

void print_params(const std::vector<cluster::AutoscalerParam>& params,
                  const char* origin) {
  std::size_t width = 0;
  for (const auto& param : params) {
    width = std::max(width, param.name.size());
  }
  for (const auto& param : params) {
    std::printf("  %-*s  %s  [default: %s, %s]\n", static_cast<int>(width),
                param.name.c_str(), param.help.c_str(),
                param.default_value.c_str(), origin);
  }
}

void print_decision_table(cluster::Autoscaler& controller,
                          std::size_t nodes, int cores) {
  cluster::GroupObservation group;
  group.active = nodes;
  group.cores_per_node = cores;
  cluster::ClusterObservation obs;
  obs.num_functions = 1;

  const double capacity =
      static_cast<double>(nodes) * static_cast<double>(cores);
  std::printf("  decisions (%zu nodes x %d cores, defaults):\n", nodes,
              cores);
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    group.executing = static_cast<std::size_t>(
        std::min(capacity, frac * capacity));
    group.queued = static_cast<std::size_t>(
        frac > 1.0 ? (frac - 1.0) * capacity : 0.0);
    const std::size_t desired = controller.desired_nodes(group, obs);
    std::printf("    load %5.1f (util %.2f, queue %3zu) -> %zu node%s%s\n",
                group.load(), group.utilization(), group.queued, desired,
                desired == 1 ? "" : "s",
                desired > nodes   ? "  (scale up)"
                : desired < nodes ? "  (scale down)"
                                  : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const int cores = argc > 2 ? std::atoi(argv[2]) : 10;

  auto& registry = cluster::AutoscalerRegistry::instance();
  std::printf(
      "Registered autoscalers (spec grammar \"name?key=value&key=value\"; "
      "\"none\" disables closed-loop scaling):\n\n");

  for (const auto& name : registry.names()) {
    const auto controller =
        registry.create(name, cluster::AutoscalerSpec{name, {}});
    std::printf("%s\n  %s\n", name.c_str(), controller->help().c_str());
    print_params(cluster::common_autoscaler_params(), "driver");
    print_params(controller->params(), "controller");
    if (controller->history_window_s() > 0.0) {
      std::printf(
          "  decisions: (skipped: scales from the %g s arrival history, "
          "not a single snapshot)\n",
          controller->history_window_s());
    } else {
      print_decision_table(*controller, nodes, cores);
    }
    std::printf("\n");
  }
  return 0;
}
