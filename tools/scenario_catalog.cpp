// Prints every registered workload scenario: its help line, its declared
// parameters (with defaults), and a summary of a sample trace generated at
// seed 0 against the SeBS catalog on a default deployment (10 cores, 1
// node, intensity 30). Scenarios with required parameters (trace replay
// needs a file) skip the sample.
//
// Usage: scenario_catalog [cores] [intensity]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "workload/scenario_registry.h"

using namespace whisk;

namespace {

void print_sample(const workload::Scenario& s) {
  std::set<workload::FunctionId> functions;
  for (const auto& c : s.calls) functions.insert(c.function);
  const double first = s.calls.empty() ? 0.0 : s.calls.front().release;
  const double last = s.calls.empty() ? 0.0 : s.calls.back().release;
  std::printf(
      "  sample (seed 0): %zu calls over a %.1f s window (%.1f calls/s), "
      "%zu distinct functions, releases %.2f..%.2f s\n",
      s.size(), s.window, static_cast<double>(s.size()) / s.window,
      functions.size(), first, last);
}

}  // namespace

int main(int argc, char** argv) {
  const auto catalog = workload::sebs_catalog();
  workload::ScenarioContext ctx;
  ctx.catalog = &catalog;
  ctx.cores = argc > 1 ? std::atoi(argv[1]) : 10;
  ctx.intensity = argc > 2 ? std::atoi(argv[2]) : 30;

  auto& registry = workload::ScenarioRegistry::instance();
  std::printf(
      "Registered workload scenarios (%d cores, intensity %d; spec grammar "
      "\"name?key=value&key=value\"):\n\n",
      ctx.cores, ctx.intensity);

  for (const auto& name : registry.names()) {
    const auto def = registry.create(name);
    std::printf("%s\n  %s\n", name.c_str(), def->help().c_str());
    bool runnable = true;
    std::size_t width = 0;
    for (const auto& param : def->params()) {
      width = std::max(width, param.name.size());
    }
    for (const auto& param : def->params()) {
      runnable = runnable && !param.required;
      std::printf("  %-*s  %s  [%s]\n", static_cast<int>(width),
                  param.name.c_str(), param.help.c_str(),
                  param.required ? "required"
                                 : ("default: " + param.default_value)
                                       .c_str());
    }
    if (runnable) {
      sim::Rng rng(0);
      print_sample(
          workload::make_scenario(workload::ScenarioSpec{name, {}}, ctx, rng));
    } else {
      std::printf("  sample: (skipped: scenario has required parameters)\n");
    }
    std::printf("\n");
  }
  return 0;
}
