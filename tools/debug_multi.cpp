
#include <cstdio>

#include "experiments/campaign.h"
#include "experiments/runner.h"
#include "util/stats.h"
#include "util/thread_pool.h"
using namespace whisk;
int main() {
  const auto cat = workload::sebs_catalog();
  // Table I: idle per-function benchmark
  for (const auto& spec : cat.specs()) {
    auto rs = experiments::run_idle_function_benchmark(cat, spec.id, 50, 7);
    auto s = util::summarize(rs);
    std::printf("%-18s p5=%7.1f p50=%7.1f p95=%7.1f (paper p50=%7.1f)\n",
                spec.name.c_str(), util::percentile(rs, 5) * 1000, s.p50 * 1000,
                s.p95 * 1000, spec.median_ms);
  }
  // Fig 6: 18-core VMs, 2376 requests, 1-4 nodes, baseline vs FC — one
  // campaign over (scheduler x fleet size) x 2 seeds.
  experiments::CampaignSpec grid;
  grid.schedulers = {experiments::SchedulerSpec::parse("baseline/fifo"),
                     experiments::SchedulerSpec::parse("ours/fc")};
  grid.scenarios = {workload::ScenarioSpec::parse("fixed-total?total=2376")};
  grid.nodes = {4, 3, 2, 1};
  grid.cores = {18};
  grid.seeds = {0, 1};
  experiments::CampaignOptions opts;
  opts.threads = util::ThreadPool::hardware_threads();
  const auto result = experiments::run_campaign(grid, cat, opts);
  for (std::size_t n = 0; n < grid.nodes.size(); ++n) {
    for (std::size_t b = 0; b < grid.schedulers.size(); ++b) {
      const auto cells =
          result.group(grid.group_index(b, 0, /*nodes_i=*/n));
      const auto s =
          util::summarize(experiments::pooled_responses(cells));
      std::printf("nodes=%d %-8s avg=%8.1f p75=%8.1f p95=%8.1f p99=%8.1f\n",
                  grid.nodes[n], b == 0 ? "baseline" : "FC", s.mean, s.p75,
                  s.p95, s.p99);
    }
  }
  return 0;
}
