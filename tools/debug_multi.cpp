
#include <cstdio>
#include "experiments/runner.h"
#include "util/stats.h"
using namespace whisk;
int main() {
  const auto cat = workload::sebs_catalog();
  // Table I: idle per-function benchmark
  for (const auto& spec : cat.specs()) {
    auto rs = experiments::run_idle_function_benchmark(cat, spec.id, 50, 7);
    auto s = util::summarize(rs);
    std::printf("%-18s p5=%7.1f p50=%7.1f p95=%7.1f (paper p50=%7.1f)\n",
                spec.name.c_str(), util::percentile(rs, 5) * 1000, s.p50 * 1000,
                s.p95 * 1000, spec.median_ms);
  }
  // Fig 6: 18-core VMs, 2376 requests, 1-4 nodes, baseline vs FC
  for (int nodes = 4; nodes >= 1; --nodes) {
    for (int b = 0; b < 2; ++b) {
      const auto cfg = experiments::ExperimentSpec()
                           .cores(18)
                           .nodes(nodes)
                           .scenario("fixed-total?total=2376")
                           .scheduler(b == 0 ? "baseline/fifo" : "ours/fc");
      auto runs = experiments::run_repetitions(cfg, cat, 2);
      auto rs = experiments::pooled_responses(runs);
      auto s = util::summarize(rs);
      std::printf("nodes=%d %-8s avg=%8.1f p75=%8.1f p95=%8.1f p99=%8.1f\n",
                  nodes, b == 0 ? "baseline" : "FC", s.mean, s.p75, s.p95,
                  s.p99);
    }
  }
  return 0;
}
