// Prints every registered workflow shape: help line, declared parameters
// with defaults, and the DAG each shape builds from its defaults (stages
// in topological order with fan-in/join annotations) — the discoverability
// mirror of scenario_catalog and fault_catalog for the workflows= axis.
//
// Usage: workflow_catalog
#include <algorithm>
#include <cstdio>

#include "workload/workflow.h"

using namespace whisk;

namespace {

void print_params(const std::vector<workload::WorkflowParam>& params) {
  std::size_t width = 0;
  for (const auto& param : params) {
    width = std::max(width, param.name.size());
  }
  for (const auto& param : params) {
    std::printf("  %-*s  %s  [default: %s]\n", static_cast<int>(width),
                param.name.c_str(), param.help.c_str(),
                param.default_value.c_str());
  }
}

// "s0 -> s1 s2 [join 2/2]" per stage: enough to eyeball the shape a spec
// expands to without running anything.
void print_dag(const workload::WorkflowDag& dag) {
  std::printf("  default DAG (%zu stages):\n", dag.size());
  for (const auto& stage : dag.stages) {
    std::printf("    %s", stage.label.c_str());
    if (stage.function_offset != 0) {
      std::printf(" (fn+%d)", stage.function_offset);
    }
    if (stage.preds > 1) {
      std::printf(" [join %d/%d]", stage.join_k, stage.preds);
    }
    if (!stage.successors.empty()) {
      std::printf(" ->");
      for (int succ : stage.successors) {
        std::printf(" %s", dag.stages[static_cast<std::size_t>(succ)]
                               .label.c_str());
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  auto& registry = workload::WorkflowRegistry::instance();
  std::printf(
      "Registered workflow shapes (spec grammar \"name?key=value&...\"; "
      "\"none\" = independent calls). Every scenario call roots one "
      "instance; a stage runs (root function + offset) mod catalog "
      "size:\n\n");
  for (const auto& name : registry.names()) {
    const auto def = registry.create(name);
    std::printf("%s\n  %s\n", name.c_str(), def->help().c_str());
    print_params(def->params());
    print_dag(def->build(workload::WorkflowSpec{std::string(name), {}}));
    std::printf("\n");
  }
  return 0;
}
