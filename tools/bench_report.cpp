// Machine-readable perf harness: runs the engine churn and history mix
// workloads (bench/engine_churn.h) on both the production hot path and the
// retained seed baseline, and emits BENCH_engine.json so the repo's perf
// trajectory can be tracked by scripts/CI instead of eyeballs.
//
// Usage: bench_report [output.json]     (default: BENCH_engine.json)
//        bench_report --check [baseline.json] [--max-regression PCT]
//
// --check re-measures just the gated workloads (engine churn, 1-thread
// campaign cells/sec and 1-worker distributed cells/sec), compares them
// against the committed baseline JSON, and exits non-zero on a
// regression beyond --max-regression percent (default 30) in any — a
// cheap CI tripwire. Parallel scaling is reported by the full run but
// never gated: it depends on the runner's core count, not the code.
//
// Needs no google-benchmark: each workload is self-timed over enough
// repetitions to exceed a minimum wall-clock budget, and the best (lowest
// ns/event) repetition is reported, the standard way to suppress scheduler
// noise in throughput measurements.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "../bench/engine_churn.h"
#include "../bench/reference_engine.h"
#include "core/history.h"
#include "experiments/campaign.h"
#include "experiments/distributed.h"
#include "sim/engine.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  std::size_t events = 0;
};

// Run `fn` (returning the number of processed items) repeatedly for at
// least `min_seconds` total and return the fastest repetition.
template <typename Fn>
Measurement measure(Fn&& fn, double min_seconds = 0.5) {
  Measurement best;
  double elapsed_total = 0.0;
  do {
    const auto t0 = Clock::now();
    const std::size_t events = fn();
    const auto t1 = Clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    elapsed_total += s;
    const double eps = static_cast<double>(events) / s;
    if (eps > best.events_per_sec) {
      best.events_per_sec = eps;
      best.ns_per_event = 1e9 * s / static_cast<double>(events);
      best.events = events;
    }
  } while (elapsed_total < min_seconds);
  return best;
}

// Process-lifetime peak RSS: getrusage's high-water mark, which nothing
// resets. Used for the whole-run footprint at the bottom of the report.
long process_peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

// Resets the kernel's per-mm RSS high-water mark (VmHWM) so the next
// peak_rss_since_reset_kb() call reflects only the phase that ran in
// between — the per-thread-count campaign footprint, not whatever earlier
// phase happened to peak higher. Best-effort: kernels without
// CONFIG_PROC_PAGE_MONITOR reject the write and the read degrades to the
// process-lifetime peak.
void reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return;
  std::fputs("5", f);
  std::fclose(f);
}

long peak_rss_since_reset_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f != nullptr) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      long kb = 0;
      if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) {
        std::fclose(f);
        return kb;
      }
    }
    std::fclose(f);
  }
  return process_peak_rss_kb();
}

// The end-to-end experiment grid the campaign layer is benchmarked on:
// 2 schedulers x a seed axis of the small paper configuration (5 cores,
// intensity 30). The seed axis scales with the pool so every pool size
// measures on >= 64 cells — an 8-cell grid cannot keep 8+ workers busy
// (tail cells leave most of the pool idle) and once under-reported the
// parallel speedup as ~1x. cells/sec stays comparable across pool sizes
// because every cell is the same amount of work. Returns the number of
// cells run.
std::size_t run_campaign_workload(const whisk::workload::FunctionCatalog& cat,
                                  int threads) {
  whisk::experiments::CampaignSpec grid;
  grid.schedulers = {
      whisk::experiments::SchedulerSpec::parse("baseline/fifo"),
      whisk::experiments::SchedulerSpec::parse("ours/sept")};
  grid.scenarios = {
      whisk::workload::ScenarioSpec::parse("uniform?intensity=30")};
  grid.cores = {5};
  const int seeds = std::max(32, 8 * threads);
  grid.seeds = whisk::experiments::CampaignSpec::first_seeds(seeds);
  whisk::experiments::CampaignOptions opts;
  opts.threads = threads;
  opts.retain_samples = false;  // the production big-sweep configuration
  const auto result = whisk::experiments::run_campaign(grid, cat, opts);
  return result.cells.size();
}

// The multi-process scaling workload: 8 groups (2 schedulers x 4
// intensities) x 8 seeds = 64 cells, group-aligned shardable up to 8 ways —
// the existing campaign workload has only 2 groups, which cannot feed 4
// workers. Fork-only in-process workers (no exec), 1 thread each: this
// measures process-level scaling plus the full shard/stream/merge protocol
// cost, not thread scaling. Returns the number of cells run.
std::size_t run_distributed_workload(
    const whisk::workload::FunctionCatalog& cat, int workers,
    long* peak_worker_rss_kb) {
  whisk::experiments::CampaignSpec grid;
  grid.schedulers = {
      whisk::experiments::SchedulerSpec::parse("baseline/fifo"),
      whisk::experiments::SchedulerSpec::parse("ours/sept")};
  grid.scenarios = {
      whisk::workload::ScenarioSpec::parse("uniform?intensity=20"),
      whisk::workload::ScenarioSpec::parse("uniform?intensity=30"),
      whisk::workload::ScenarioSpec::parse("uniform?intensity=40"),
      whisk::workload::ScenarioSpec::parse("uniform?intensity=50")};
  grid.cores = {5};
  grid.seeds = whisk::experiments::CampaignSpec::first_seeds(8);
  whisk::experiments::DistributedOptions opts;
  opts.workers = workers;
  opts.worker_threads = 1;
  opts.retain_samples = false;
  const auto result = whisk::experiments::run_distributed(grid, cat, opts);
  if (peak_worker_rss_kb != nullptr) {
    *peak_worker_rss_kb = result.peak_worker_rss_kb;
  }
  return result.spec.size();
}

// The autoscaling stress: a min/max-bounded fleet under a fast-ticking
// target-util controller with cost metering and an SLO, 4 seeds. Exercises
// the controller tick loop, mid-run add_node/drain through the lifecycle
// machinery, node-seconds metering and the SLO accounting end to end.
// Returns the number of cells run.
std::size_t run_autoscaled_workload(const whisk::workload::FunctionCatalog& cat,
                                    int threads) {
  whisk::experiments::CampaignSpec grid;
  grid.schedulers = {
      whisk::experiments::SchedulerSpec::parse("ours/sept")};
  grid.scenarios = {
      whisk::workload::ScenarioSpec::parse("fixed-total?total=300")};
  grid.cores = {5};
  grid.clusters = {whisk::cluster::ClusterSpec::parse(
      "node:2?cost-per-hour=0.48&min-nodes=1&max-nodes=6; "
      "autoscaler=target-util?low=0.25&high=0.7&tick-s=1&cooldown-s=1; "
      "slo=p99<15")};
  grid.seeds = {0, 1, 2, 3};
  whisk::experiments::CampaignOptions opts;
  opts.threads = threads;
  opts.retain_samples = false;
  const auto result = whisk::experiments::run_campaign(grid, cat, opts);
  return result.cells.size();
}

// The deployment-layer stress: a heterogeneous two-group fleet with TTL
// keep-alive and drain/fail/join churn mid-burst, 4 seeds under the
// capacity-aware balancer. Exercises ClusterSpec expansion, the NodeView
// rebuilds, keep-alive sweeps and the failure re-submission path end to
// end. Returns the number of cells run.
std::size_t run_hetero_workload(const whisk::workload::FunctionCatalog& cat,
                                int threads) {
  whisk::experiments::CampaignSpec grid;
  grid.schedulers = {whisk::experiments::SchedulerSpec::parse(
      "ours/sept/weighted-least-loaded")};
  grid.scenarios = {
      whisk::workload::ScenarioSpec::parse("fixed-total?total=300")};
  grid.cores = {5};
  grid.clusters = {whisk::cluster::ClusterSpec::parse(
      "big:1?cores=16,small:2?cores=4; keep-alive=ttl?idle-s=120; "
      "events=drain@10:small/0,fail@20:small/1,join@30:small")};
  grid.seeds = {0, 1, 2, 3};
  whisk::experiments::CampaignOptions opts;
  opts.threads = threads;
  opts.retain_samples = false;
  const auto result = whisk::experiments::run_campaign(grid, cat, opts);
  return result.cells.size();
}

// The fault-path overhead probe: the same single-node grid as
// run_campaign_workload in four configurations.
//   kPlain    no faults= / resilience= section — the paper hot path, where
//             the fault subsystem is only dead guard branches (its absence
//             of cost is separately pinned by the byte-identical paper
//             benches).
//   kTracked  a far-future `events=fail@` entry: per-call in-flight
//             tracking — the shared lifecycle machinery that predates the
//             fault subsystem and that disruptive faults ride on — is
//             armed, but nothing fires inside the workload window.
//   kDormant  a crash process whose MTBF is ~30 years of sim time instead:
//             same tracking, plus the fault registry/dropper/parking
//             hooks. The tracked/dormant ratio is the acceptance number —
//             the subsystem's own marginal cost on a healthy run.
//   kArmed    dormant plus a per-call timeout that the completion always
//             cancels, a breaker and admission checks — the cost of
//             *arming* the resilience layer, reported for context.
enum class FaultPathConfig { kPlain, kTracked, kDormant, kArmed };

std::size_t run_fault_path_workload(const whisk::workload::FunctionCatalog& cat,
                                    FaultPathConfig config) {
  whisk::experiments::CampaignSpec grid;
  grid.schedulers = {
      whisk::experiments::SchedulerSpec::parse("baseline/fifo"),
      whisk::experiments::SchedulerSpec::parse("ours/sept")};
  // Long cells: per-cell constants (spec probing, fault construction)
  // amortize away, so the ratio reflects the per-call hot path.
  grid.scenarios = {
      whisk::workload::ScenarioSpec::parse("fixed-total?total=2000")};
  grid.cores = {5};
  const char* deployment = "node:1";
  if (config == FaultPathConfig::kTracked) {
    deployment = "node:1; events=fail@100000:node/0";
  } else if (config == FaultPathConfig::kDormant) {
    deployment = "node:1; faults=crash-restart?mtbf-s=1e9&mttr-s=1";
  } else if (config == FaultPathConfig::kArmed) {
    deployment =
        "node:1; faults=crash-restart?mtbf-s=1e9&mttr-s=1; "
        "resilience=timeout-s=10000&max-attempts=4&"
        "breaker-failures=3&max-queue=100000";
  }
  grid.clusters = {whisk::cluster::ClusterSpec::parse(deployment)};
  grid.seeds = {0, 1, 2, 3};
  whisk::experiments::CampaignOptions opts;
  opts.threads = 1;  // serial: the ratio should not see pool jitter
  opts.retain_samples = false;
  const auto result = whisk::experiments::run_campaign(grid, cat, opts);
  return result.cells.size();
}

// The workflow-path overhead probe: the same single-node grid as the fault
// probe in three configurations.
//   kPlain   no workflows= axis — workflow_ stays null and every call takes
//            the exact pre-workflow code path (pinned byte-identical by the
//            paper benches).
//   kNone    workflows=none configured explicitly: the axis is armed and
//            every cell carries a WorkflowSpec, but the disabled spec keeps
//            workflow_ null — the subsystem's cost when no DAG is
//            configured. The plain/none ratio is the acceptance number.
//   kSingle  chain?stages=1: the WorkflowEngine is fully armed — root
//            registration, cp hints, per-record annotation and resolution
//            bookkeeping all run — but the one-stage DAG spawns no extra
//            calls, so every configuration simulates the identical call
//            population; armed marginal cost, reported for context.
enum class WorkflowPathConfig { kPlain, kNone, kSingle };

std::size_t run_workflow_path_workload(
    const whisk::workload::FunctionCatalog& cat, WorkflowPathConfig config) {
  whisk::experiments::CampaignSpec grid;
  grid.schedulers = {
      whisk::experiments::SchedulerSpec::parse("baseline/fifo"),
      whisk::experiments::SchedulerSpec::parse("ours/sept")};
  grid.scenarios = {
      whisk::workload::ScenarioSpec::parse("fixed-total?total=2000")};
  grid.cores = {5};
  if (config == WorkflowPathConfig::kNone) {
    grid.workflows = {whisk::workload::WorkflowSpec{}};
    grid.workflows_set = true;
  } else if (config == WorkflowPathConfig::kSingle) {
    grid.workflows = {whisk::workload::WorkflowSpec::parse("chain?stages=1")};
  }
  grid.seeds = {0, 1, 2, 3};
  whisk::experiments::CampaignOptions opts;
  opts.threads = 1;  // serial: the ratio should not see pool jitter
  opts.retain_samples = false;
  const auto result = whisk::experiments::run_campaign(grid, cat, opts);
  return result.cells.size();
}

// One campaign throughput sample at a fixed pool size, with the peak RSS
// the phase reached (VmHWM reset before each phase).
struct ScalePoint {
  int threads = 1;
  Measurement m;
  long peak_rss_kb = 0;
};

// One distributed-campaign throughput sample at a fixed worker-process
// count, with the largest peak RSS any worker reported.
struct DistPoint {
  int workers = 1;
  Measurement m;
  long peak_worker_rss_kb = 0;
};

void emit(std::FILE* out, const char* churn_label, int hw_threads,
          Measurement new_churn,
          Measurement seed_churn, Measurement new_drain,
          Measurement seed_drain, Measurement new_hist, Measurement seed_hist,
          const std::vector<ScalePoint>& scaling, Measurement hetero,
          Measurement autoscaled, Measurement fault_base,
          Measurement fault_tracked, Measurement fault_dormant,
          Measurement fault_armed, Measurement wf_plain,
          Measurement wf_none, Measurement wf_single,
          const std::vector<DistPoint>& distributed) {
  auto block = [out](const char* name, const Measurement& m,
                     const char* trailer) {
    std::fprintf(out,
                 "    \"%s\": {\"events_per_sec\": %.0f, \"ns_per_event\": "
                 "%.2f, \"events\": %zu}%s\n",
                 name, m.events_per_sec, m.ns_per_event, m.events, trailer);
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"%s\",\n", churn_label);
  std::fprintf(out, "  \"engine_churn\": {\n");
  block("new", new_churn, ",");
  block("seed", seed_churn, ",");
  std::fprintf(out, "    \"speedup\": %.2f\n",
               new_churn.events_per_sec / seed_churn.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"engine_schedule_drain\": {\n");
  block("new", new_drain, ",");
  block("seed", seed_drain, ",");
  std::fprintf(out, "    \"speedup\": %.2f\n",
               new_drain.events_per_sec / seed_drain.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"history_mix\": {\n");
  block("new", new_hist, ",");
  block("seed", seed_hist, ",");
  std::fprintf(out, "    \"speedup\": %.2f\n",
               new_hist.events_per_sec / seed_hist.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"campaign\": {\n");
  std::fprintf(out, "    \"cells\": %zu,\n", scaling.front().m.events);
  std::fprintf(out, "    \"hw_threads\": %d,\n", hw_threads);
  std::fprintf(out, "    \"scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(out,
                 "      {\"threads\": %d, \"cells_per_sec\": %.2f, "
                 "\"peak_rss_kb\": %ld}%s\n",
                 scaling[i].threads, scaling[i].m.events_per_sec,
                 scaling[i].peak_rss_kb,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"parallel_speedup\": %.2f\n",
               scaling.back().m.events_per_sec /
                   scaling.front().m.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"hetero_fleet\": {\n");
  std::fprintf(out,
               "    \"cells\": %zu, \"cells_per_sec\": %.2f, "
               "\"description\": \"2-group fleet, ttl keep-alive, "
               "drain+fail+join churn\"\n",
               hetero.events, hetero.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"autoscaled_fleet\": {\n");
  std::fprintf(out,
               "    \"cells\": %zu, \"cells_per_sec\": %.2f, "
               "\"description\": \"target-util controller, bounded 1..6 "
               "fleet, cost metering + slo accounting\"\n",
               autoscaled.events, autoscaled.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"fault_path\": {\n");
  std::fprintf(out,
               "    \"plain_cells_per_sec\": %.2f,\n"
               "    \"tracked_cells_per_sec\": %.2f,\n"
               "    \"dormant_cells_per_sec\": %.2f,\n"
               "    \"overhead_pct\": %.2f,\n"
               "    \"armed_cells_per_sec\": %.2f,\n"
               "    \"armed_overhead_pct\": %.2f,\n"
               "    \"description\": \"overhead_pct: never-firing crash "
               "process (dormant) vs the pre-existing in-flight-tracked "
               "baseline (tracked) — the fault subsystem's own cost on a "
               "healthy run (acceptance: < 2%%). plain is the bare paper "
               "hot path, whose freedom from fault-path cost is pinned by "
               "byte-identical benches; armed_* adds per-call timeout + "
               "breaker + admission checks, for context.\"\n",
               fault_base.events_per_sec, fault_tracked.events_per_sec,
               fault_dormant.events_per_sec,
               (fault_tracked.events_per_sec / fault_dormant.events_per_sec -
                1.0) *
                   100.0,
               fault_armed.events_per_sec,
               (fault_base.events_per_sec / fault_armed.events_per_sec -
                1.0) *
                   100.0);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"workflow_path\": {\n");
  std::fprintf(out,
               "    \"plain_cells_per_sec\": %.2f,\n"
               "    \"none_cells_per_sec\": %.2f,\n"
               "    \"overhead_pct\": %.2f,\n"
               "    \"single_stage_cells_per_sec\": %.2f,\n"
               "    \"armed_overhead_pct\": %.2f,\n"
               "    \"description\": \"overhead_pct: workflows=none "
               "configured explicitly (axis armed, workflow engine never "
               "instantiated) vs the plain workflow-free hot path — the "
               "subsystem's cost when no DAG is configured (acceptance: "
               "< 2%%); the same claim the byte-identical paper benches pin "
               "behaviorally. armed_overhead_pct: a fully armed "
               "single-stage workflow (chain?stages=1 — root registration, "
               "cp hints, per-record annotation, resolution bookkeeping; no "
               "extra calls spawned) on the identical call population — the "
               "engine's marginal per-call cost once a DAG is configured, "
               "for context.\"\n",
               wf_plain.events_per_sec, wf_none.events_per_sec,
               (wf_plain.events_per_sec / wf_none.events_per_sec - 1.0) *
                   100.0,
               wf_single.events_per_sec,
               (wf_plain.events_per_sec / wf_single.events_per_sec - 1.0) *
                   100.0);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"distributed\": {\n");
  std::fprintf(out, "    \"cells\": %zu,\n", distributed.front().m.events);
  std::fprintf(out, "    \"hw_threads\": %d,\n", hw_threads);
  std::fprintf(out, "    \"scaling\": [\n");
  for (std::size_t i = 0; i < distributed.size(); ++i) {
    std::fprintf(out,
                 "      {\"workers\": %d, \"cells_per_sec\": %.2f, "
                 "\"peak_worker_rss_kb\": %ld}%s\n",
                 distributed[i].workers, distributed[i].m.events_per_sec,
                 distributed[i].peak_worker_rss_kb,
                 i + 1 < distributed.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"parallel_speedup\": %.2f,\n",
               distributed.back().m.events_per_sec /
                   distributed.front().m.events_per_sec);
  std::fprintf(out,
               "    \"description\": \"multi-process campaign: group-aligned "
               "shards, fork-per-worker, streamed cells + summary trailer, "
               "deterministic merge (merged output byte-identical to one "
               "process); 1 thread per worker\"\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"peak_rss_kb\": %ld\n", process_peak_rss_kb());
  std::fprintf(out, "}\n");
}

// Pulls the number that follows the last anchor, with each anchor located
// forward from the previous one (e.g. {"campaign", "\"threads\": 1,",
// "\"cells_per_sec\": "}). Deliberately a string scan, not a JSON parser:
// this tool writes the file it later checks, so the layout is its own.
// Returns a negative value when any anchor is missing.
double extract_number(const std::string& json,
                      std::initializer_list<const char*> anchors) {
  std::size_t pos = 0;
  for (const char* a : anchors) {
    pos = json.find(a, pos);
    if (pos == std::string::npos) return -1.0;
    pos += std::strlen(a);
  }
  return std::atof(json.c_str() + pos);
}

// `bench_report --check [baseline.json] [--max-regression PCT]`:
// re-measure the gated workloads and fail on a throughput regression
// beyond `max_regression` (fraction) against the committed baseline. The
// default 30% is far outside run-to-run noise for best-of-N measurements
// (a few percent on a quiet box) but well inside the damage an accidental
// O(n) slip or a dropped compiler flag causes; busier CI runners can
// widen it per-invocation instead of editing this tool.
int run_check(const std::string& baseline_path, double max_regression) {
  std::FILE* f = std::fopen(baseline_path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "check: cannot read %s\n", baseline_path.c_str());
    return 2;
  }
  std::string json;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) json.append(buf, n);
  std::fclose(f);

  const double base_churn = extract_number(
      json, {"\"engine_churn\"", "\"new\"", "\"events_per_sec\": "});
  const double base_cells = extract_number(
      json, {"\"campaign\"", "\"threads\": 1,", "\"cells_per_sec\": "});
  if (base_churn <= 0.0 || base_cells <= 0.0) {
    std::fprintf(stderr, "check: %s lacks engine_churn/campaign numbers\n",
                 baseline_path.c_str());
    return 2;
  }
  // Baselines written before the distributed block existed lack the
  // anchor; skip that gate rather than fail on old pins.
  const double base_dist = extract_number(
      json, {"\"distributed\"", "\"workers\": 1,", "\"cells_per_sec\": "});

  std::fprintf(stderr, "check: measuring engine churn...\n");
  constexpr std::size_t kChurnEvents = 100000;
  const auto churn = measure([] {
    return whisk::bench::run_engine_churn<whisk::sim::Engine>(kChurnEvents,
                                                              42);
  });
  std::fprintf(stderr, "check: measuring campaign cells/sec (1 thread)...\n");
  const auto cat = whisk::workload::sebs_catalog();
  const auto campaign = measure(
      [&cat] { return run_campaign_workload(cat, 1); }, 1.0);
  Measurement dist;
  if (base_dist > 0.0) {
    std::fprintf(stderr,
                 "check: measuring distributed cells/sec (1 worker)...\n");
    dist = measure(
        [&cat] { return run_distributed_workload(cat, 1, nullptr); }, 1.0);
  } else {
    std::fprintf(stderr,
                 "check: baseline lacks a distributed block, skipping that "
                 "gate\n");
  }

  int failures = 0;
  auto gate = [&failures, max_regression](const char* name, double fresh,
                                          double base) {
    const double floor = base * (1.0 - max_regression);
    const bool ok = fresh >= floor;
    std::fprintf(stderr,
                 "check: %-24s %12.2f vs baseline %12.2f (floor %12.2f) %s\n",
                 name, fresh, base, floor, ok ? "ok" : "REGRESSION");
    if (!ok) ++failures;
  };
  gate("engine_churn ev/s", churn.events_per_sec, base_churn);
  gate("campaign 1t cells/s", campaign.events_per_sec, base_cells);
  if (base_dist > 0.0) {
    gate("distributed 1w cells/s", dist.events_per_sec, base_dist);
  }
  if (failures > 0) {
    std::fprintf(stderr, "check: FAILED (%d regression%s > %.0f%%)\n",
                 failures, failures == 1 ? "" : "s", max_regression * 100.0);
    return 1;
  }
  std::fprintf(stderr, "check: ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool max_regression_given = false;
  double max_regression_pct = 30.0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--max-regression") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--max-regression needs a percentage\n");
        return 2;
      }
      char* end = nullptr;
      max_regression_given = true;
      max_regression_pct = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || max_regression_pct <= 0.0 ||
          max_regression_pct >= 100.0) {
        std::fprintf(stderr,
                     "--max-regression needs a percentage in (0, 100), got "
                     "\"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [output.json] | %s --check [baseline.json] "
                   "[--max-regression PCT]\n",
                   argv[0], argv[0]);
      return 2;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "more than one path argument\n");
      return 2;
    }
  }
  if (path.empty()) path = "BENCH_engine.json";
  if (check) return run_check(path, max_regression_pct / 100.0);
  if (max_regression_given) {
    std::fprintf(stderr, "--max-regression only applies to --check\n");
    return 2;
  }
  constexpr std::size_t kChurnEvents = 100000;
  constexpr std::size_t kDrainEvents = 100000;
  constexpr std::size_t kHistoryCalls = 200000;

  std::fprintf(stderr, "measuring engine churn (new)...\n");
  const auto new_churn = measure([] {
    return whisk::bench::run_engine_churn<whisk::sim::Engine>(kChurnEvents,
                                                              42);
  });
  std::fprintf(stderr, "measuring engine churn (seed)...\n");
  const auto seed_churn = measure([] {
    return whisk::bench::run_engine_churn<whisk::bench::ref::SeedEngine>(
        kChurnEvents, 42);
  });
  std::fprintf(stderr, "measuring schedule/drain (new)...\n");
  const auto new_drain = measure([] {
    return whisk::bench::run_engine_schedule_drain<whisk::sim::Engine>(
        kDrainEvents, 7);
  });
  std::fprintf(stderr, "measuring schedule/drain (seed)...\n");
  const auto seed_drain = measure([] {
    return whisk::bench::run_engine_schedule_drain<
        whisk::bench::ref::SeedEngine>(kDrainEvents, 7);
  });
  std::fprintf(stderr, "measuring history mix (new)...\n");
  const auto new_hist = measure([] {
    whisk::bench::run_history_mix<whisk::core::RuntimeHistory>(kHistoryCalls,
                                                               99);
    return kHistoryCalls;
  });
  std::fprintf(stderr, "measuring history mix (seed)...\n");
  const auto seed_hist = measure([] {
    whisk::bench::run_history_mix<whisk::bench::ref::SeedHistory>(
        kHistoryCalls, 99);
    return kHistoryCalls;
  });

  const auto cat = whisk::workload::sebs_catalog();
  const int hw_threads = whisk::util::ThreadPool::hardware_threads();
  // Campaign throughput at 1, 2 and all hardware threads — the scaling
  // curve, not just its endpoints (deduplicated when the box is small).
  std::vector<ScalePoint> scaling;
  for (int threads : {1, 2, hw_threads}) {
    if (!scaling.empty() && scaling.back().threads >= threads) continue;
    std::fprintf(stderr, "measuring campaign cells/sec (%d thread%s)...\n",
                 threads, threads == 1 ? "" : "s");
    reset_peak_rss();
    const auto m = measure(
        [&cat, threads] { return run_campaign_workload(cat, threads); }, 1.0);
    scaling.push_back({threads, m, peak_rss_since_reset_kb()});
  }
  std::fprintf(stderr, "measuring heterogeneous-fleet cells/sec...\n");
  const auto hetero = measure(
      [&cat, hw_threads] { return run_hetero_workload(cat, hw_threads); },
      1.0);
  std::fprintf(stderr, "measuring autoscaled-fleet cells/sec...\n");
  const auto autoscaled = measure(
      [&cat, hw_threads] { return run_autoscaled_workload(cat, hw_threads); },
      1.0);
  // The four fault-path configurations are measured interleaved — one
  // repetition of each per round — so clock-frequency and thermal drift
  // hit every configuration equally instead of biasing whichever phase
  // ran first; the overhead ratios compare bests drawn from the same
  // wall-clock window.
  std::fprintf(stderr, "measuring fault-path overhead (interleaved)...\n");
  constexpr FaultPathConfig kFaultConfigs[] = {
      FaultPathConfig::kPlain, FaultPathConfig::kTracked,
      FaultPathConfig::kDormant, FaultPathConfig::kArmed};
  Measurement fault_m[4];
  double fault_elapsed = 0.0;
  while (fault_elapsed < 8.0) {
    for (std::size_t i = 0; i < 4; ++i) {
      const auto t0 = Clock::now();
      const std::size_t cells = run_fault_path_workload(cat, kFaultConfigs[i]);
      const auto t1 = Clock::now();
      const double s = std::chrono::duration<double>(t1 - t0).count();
      fault_elapsed += s;
      const double eps = static_cast<double>(cells) / s;
      if (eps > fault_m[i].events_per_sec) {
        fault_m[i].events_per_sec = eps;
        fault_m[i].ns_per_event = 1e9 * s / static_cast<double>(cells);
        fault_m[i].events = cells;
      }
    }
  }
  const Measurement fault_base = fault_m[0];
  const Measurement fault_tracked = fault_m[1];
  const Measurement fault_dormant = fault_m[2];
  const Measurement fault_armed = fault_m[3];

  // Same interleaved discipline for the workflow-path triple.
  std::fprintf(stderr, "measuring workflow-path overhead (interleaved)...\n");
  constexpr WorkflowPathConfig kWorkflowConfigs[] = {
      WorkflowPathConfig::kPlain, WorkflowPathConfig::kNone,
      WorkflowPathConfig::kSingle};
  Measurement wf_m[3];
  double wf_elapsed = 0.0;
  while (wf_elapsed < 6.0) {
    for (std::size_t i = 0; i < 3; ++i) {
      const auto t0 = Clock::now();
      const std::size_t cells =
          run_workflow_path_workload(cat, kWorkflowConfigs[i]);
      const auto t1 = Clock::now();
      const double s = std::chrono::duration<double>(t1 - t0).count();
      wf_elapsed += s;
      const double eps = static_cast<double>(cells) / s;
      if (eps > wf_m[i].events_per_sec) {
        wf_m[i].events_per_sec = eps;
        wf_m[i].ns_per_event = 1e9 * s / static_cast<double>(cells);
        wf_m[i].events = cells;
      }
    }
  }

  // Multi-process scaling at 1, 2 and 4 workers. Worker processes are not
  // bounded by the core count the way pool threads are, but points beyond
  // the hardware would only measure oversubscription; 4 is the widest the
  // 8-group workload shards evenly anyway.
  std::vector<DistPoint> distributed;
  for (int workers : {1, 2, 4}) {
    std::fprintf(stderr, "measuring distributed cells/sec (%d worker%s)...\n",
                 workers, workers == 1 ? "" : "s");
    long worker_rss = 0;
    const auto m = measure(
        [&cat, workers, &worker_rss] {
          return run_distributed_workload(cat, workers, &worker_rss);
        },
        1.0);
    distributed.push_back({workers, m, worker_rss});
  }

  emit(stdout, "engine_hot_path", hw_threads, new_churn, seed_churn,
       new_drain, seed_drain, new_hist, seed_hist, scaling, hetero,
       autoscaled, fault_base, fault_tracked, fault_dormant, fault_armed,
       wf_m[0], wf_m[1], wf_m[2], distributed);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  emit(f, "engine_hot_path", hw_threads, new_churn, seed_churn, new_drain,
       seed_drain, new_hist, seed_hist, scaling, hetero, autoscaled,
       fault_base, fault_tracked, fault_dormant, fault_armed, wf_m[0],
       wf_m[1], wf_m[2], distributed);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (churn speedup: %.2fx)\n", path.c_str(),
               new_churn.events_per_sec / seed_churn.events_per_sec);
  return 0;
}
