// Machine-readable perf harness: runs the engine churn and history mix
// workloads (bench/engine_churn.h) on both the production hot path and the
// retained seed baseline, and emits BENCH_engine.json so the repo's perf
// trajectory can be tracked by scripts/CI instead of eyeballs.
//
// Usage: bench_report [output.json]     (default: BENCH_engine.json)
//
// Needs no google-benchmark: each workload is self-timed over enough
// repetitions to exceed a minimum wall-clock budget, and the best (lowest
// ns/event) repetition is reported, the standard way to suppress scheduler
// noise in throughput measurements.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "../bench/engine_churn.h"
#include "../bench/reference_engine.h"
#include "core/history.h"
#include "experiments/campaign.h"
#include "sim/engine.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  std::size_t events = 0;
};

// Run `fn` (returning the number of processed items) repeatedly for at
// least `min_seconds` total and return the fastest repetition.
template <typename Fn>
Measurement measure(Fn&& fn, double min_seconds = 0.5) {
  Measurement best;
  double elapsed_total = 0.0;
  do {
    const auto t0 = Clock::now();
    const std::size_t events = fn();
    const auto t1 = Clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    elapsed_total += s;
    const double eps = static_cast<double>(events) / s;
    if (eps > best.events_per_sec) {
      best.events_per_sec = eps;
      best.ns_per_event = 1e9 * s / static_cast<double>(events);
      best.events = events;
    }
  } while (elapsed_total < min_seconds);
  return best;
}

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

// The end-to-end experiment grid the campaign layer is benchmarked on:
// 2 schedulers x 4 seeds of the small paper configuration (5 cores,
// intensity 30). Returns the number of cells run.
std::size_t run_campaign_workload(const whisk::workload::FunctionCatalog& cat,
                                  int threads) {
  whisk::experiments::CampaignSpec grid;
  grid.schedulers = {
      whisk::experiments::SchedulerSpec::parse("baseline/fifo"),
      whisk::experiments::SchedulerSpec::parse("ours/sept")};
  grid.scenarios = {
      whisk::workload::ScenarioSpec::parse("uniform?intensity=30")};
  grid.cores = {5};
  grid.seeds = {0, 1, 2, 3};
  whisk::experiments::CampaignOptions opts;
  opts.threads = threads;
  opts.retain_samples = false;  // the production big-sweep configuration
  const auto result = whisk::experiments::run_campaign(grid, cat, opts);
  return result.cells.size();
}

// The autoscaling stress: a min/max-bounded fleet under a fast-ticking
// target-util controller with cost metering and an SLO, 4 seeds. Exercises
// the controller tick loop, mid-run add_node/drain through the lifecycle
// machinery, node-seconds metering and the SLO accounting end to end.
// Returns the number of cells run.
std::size_t run_autoscaled_workload(const whisk::workload::FunctionCatalog& cat,
                                    int threads) {
  whisk::experiments::CampaignSpec grid;
  grid.schedulers = {
      whisk::experiments::SchedulerSpec::parse("ours/sept")};
  grid.scenarios = {
      whisk::workload::ScenarioSpec::parse("fixed-total?total=300")};
  grid.cores = {5};
  grid.clusters = {whisk::cluster::ClusterSpec::parse(
      "node:2?cost-per-hour=0.48&min-nodes=1&max-nodes=6; "
      "autoscaler=target-util?low=0.25&high=0.7&tick-s=1&cooldown-s=1; "
      "slo=p99<15")};
  grid.seeds = {0, 1, 2, 3};
  whisk::experiments::CampaignOptions opts;
  opts.threads = threads;
  opts.retain_samples = false;
  const auto result = whisk::experiments::run_campaign(grid, cat, opts);
  return result.cells.size();
}

// The deployment-layer stress: a heterogeneous two-group fleet with TTL
// keep-alive and drain/fail/join churn mid-burst, 4 seeds under the
// capacity-aware balancer. Exercises ClusterSpec expansion, the NodeView
// rebuilds, keep-alive sweeps and the failure re-submission path end to
// end. Returns the number of cells run.
std::size_t run_hetero_workload(const whisk::workload::FunctionCatalog& cat,
                                int threads) {
  whisk::experiments::CampaignSpec grid;
  grid.schedulers = {whisk::experiments::SchedulerSpec::parse(
      "ours/sept/weighted-least-loaded")};
  grid.scenarios = {
      whisk::workload::ScenarioSpec::parse("fixed-total?total=300")};
  grid.cores = {5};
  grid.clusters = {whisk::cluster::ClusterSpec::parse(
      "big:1?cores=16,small:2?cores=4; keep-alive=ttl?idle-s=120; "
      "events=drain@10:small/0,fail@20:small/1,join@30:small")};
  grid.seeds = {0, 1, 2, 3};
  whisk::experiments::CampaignOptions opts;
  opts.threads = threads;
  opts.retain_samples = false;
  const auto result = whisk::experiments::run_campaign(grid, cat, opts);
  return result.cells.size();
}

// One campaign throughput sample at a fixed pool size.
struct ScalePoint {
  int threads = 1;
  Measurement m;
};

void emit(std::FILE* out, const char* churn_label, Measurement new_churn,
          Measurement seed_churn, Measurement new_drain,
          Measurement seed_drain, Measurement new_hist, Measurement seed_hist,
          const std::vector<ScalePoint>& scaling, Measurement hetero,
          Measurement autoscaled) {
  auto block = [out](const char* name, const Measurement& m,
                     const char* trailer) {
    std::fprintf(out,
                 "    \"%s\": {\"events_per_sec\": %.0f, \"ns_per_event\": "
                 "%.2f, \"events\": %zu}%s\n",
                 name, m.events_per_sec, m.ns_per_event, m.events, trailer);
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"%s\",\n", churn_label);
  std::fprintf(out, "  \"engine_churn\": {\n");
  block("new", new_churn, ",");
  block("seed", seed_churn, ",");
  std::fprintf(out, "    \"speedup\": %.2f\n",
               new_churn.events_per_sec / seed_churn.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"engine_schedule_drain\": {\n");
  block("new", new_drain, ",");
  block("seed", seed_drain, ",");
  std::fprintf(out, "    \"speedup\": %.2f\n",
               new_drain.events_per_sec / seed_drain.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"history_mix\": {\n");
  block("new", new_hist, ",");
  block("seed", seed_hist, ",");
  std::fprintf(out, "    \"speedup\": %.2f\n",
               new_hist.events_per_sec / seed_hist.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"campaign\": {\n");
  std::fprintf(out, "    \"cells\": %zu,\n", scaling.front().m.events);
  std::fprintf(out, "    \"scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(out,
                 "      {\"threads\": %d, \"cells_per_sec\": %.2f}%s\n",
                 scaling[i].threads, scaling[i].m.events_per_sec,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"parallel_speedup\": %.2f\n",
               scaling.back().m.events_per_sec /
                   scaling.front().m.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"hetero_fleet\": {\n");
  std::fprintf(out,
               "    \"cells\": %zu, \"cells_per_sec\": %.2f, "
               "\"description\": \"2-group fleet, ttl keep-alive, "
               "drain+fail+join churn\"\n",
               hetero.events, hetero.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"autoscaled_fleet\": {\n");
  std::fprintf(out,
               "    \"cells\": %zu, \"cells_per_sec\": %.2f, "
               "\"description\": \"target-util controller, bounded 1..6 "
               "fleet, cost metering + slo accounting\"\n",
               autoscaled.events, autoscaled.events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"peak_rss_kb\": %ld\n", peak_rss_kb());
  std::fprintf(out, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_engine.json";
  constexpr std::size_t kChurnEvents = 100000;
  constexpr std::size_t kDrainEvents = 100000;
  constexpr std::size_t kHistoryCalls = 200000;

  std::fprintf(stderr, "measuring engine churn (new)...\n");
  const auto new_churn = measure([] {
    return whisk::bench::run_engine_churn<whisk::sim::Engine>(kChurnEvents,
                                                              42);
  });
  std::fprintf(stderr, "measuring engine churn (seed)...\n");
  const auto seed_churn = measure([] {
    return whisk::bench::run_engine_churn<whisk::bench::ref::SeedEngine>(
        kChurnEvents, 42);
  });
  std::fprintf(stderr, "measuring schedule/drain (new)...\n");
  const auto new_drain = measure([] {
    return whisk::bench::run_engine_schedule_drain<whisk::sim::Engine>(
        kDrainEvents, 7);
  });
  std::fprintf(stderr, "measuring schedule/drain (seed)...\n");
  const auto seed_drain = measure([] {
    return whisk::bench::run_engine_schedule_drain<
        whisk::bench::ref::SeedEngine>(kDrainEvents, 7);
  });
  std::fprintf(stderr, "measuring history mix (new)...\n");
  const auto new_hist = measure([] {
    whisk::bench::run_history_mix<whisk::core::RuntimeHistory>(kHistoryCalls,
                                                               99);
    return kHistoryCalls;
  });
  std::fprintf(stderr, "measuring history mix (seed)...\n");
  const auto seed_hist = measure([] {
    whisk::bench::run_history_mix<whisk::bench::ref::SeedHistory>(
        kHistoryCalls, 99);
    return kHistoryCalls;
  });

  const auto cat = whisk::workload::sebs_catalog();
  const int hw_threads = whisk::util::ThreadPool::hardware_threads();
  // Campaign throughput at 1, 2 and all hardware threads — the scaling
  // curve, not just its endpoints (deduplicated when the box is small).
  std::vector<ScalePoint> scaling;
  for (int threads : {1, 2, hw_threads}) {
    if (!scaling.empty() && scaling.back().threads >= threads) continue;
    std::fprintf(stderr, "measuring campaign cells/sec (%d thread%s)...\n",
                 threads, threads == 1 ? "" : "s");
    scaling.push_back(
        {threads, measure([&cat, threads] {
           return run_campaign_workload(cat, threads);
         }, 1.0)});
  }
  std::fprintf(stderr, "measuring heterogeneous-fleet cells/sec...\n");
  const auto hetero = measure(
      [&cat, hw_threads] { return run_hetero_workload(cat, hw_threads); },
      1.0);
  std::fprintf(stderr, "measuring autoscaled-fleet cells/sec...\n");
  const auto autoscaled = measure(
      [&cat, hw_threads] { return run_autoscaled_workload(cat, hw_threads); },
      1.0);

  emit(stdout, "engine_hot_path", new_churn, seed_churn, new_drain,
       seed_drain, new_hist, seed_hist, scaling, hetero, autoscaled);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  emit(f, "engine_hot_path", new_churn, seed_churn, new_drain, seed_drain,
       new_hist, seed_hist, scaling, hetero, autoscaled);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (churn speedup: %.2fx)\n", path.c_str(),
               new_churn.events_per_sec / seed_churn.events_per_sec);
  return 0;
}
