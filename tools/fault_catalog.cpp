// Prints both sides of the robustness subsystem: every registered fault
// process (help line, declared parameters with defaults, and whether it
// kills nodes / swallows completions), then the controller-side resilience
// knobs a deployment's resilience= section accepts.
//
// Usage: fault_catalog
#include <algorithm>
#include <cstdio>

#include "cluster/fault.h"
#include "cluster/resilience.h"

using namespace whisk;

namespace {

template <typename Param>
void print_params(const std::vector<Param>& params) {
  std::size_t width = 0;
  for (const auto& param : params) {
    width = std::max(width, param.name.size());
  }
  for (const auto& param : params) {
    std::printf("  %-*s  %s  [default: %s]\n", static_cast<int>(width),
                param.name.c_str(), param.help.c_str(),
                param.default_value.c_str());
  }
}

}  // namespace

int main() {
  auto& registry = cluster::FaultRegistry::instance();
  std::printf(
      "Registered fault processes (spec grammar \"name?key=value&...\", "
      "','/'+'-joined into a faults= list; \"none\" = fault-free):\n\n");
  for (const auto& name : registry.names()) {
    const auto process = registry.create(name, cluster::FaultSpec{name, {}});
    std::printf("%s\n  %s\n", name.c_str(), process->help().c_str());
    if (process->disruptive()) {
      std::printf("  disruptive: fails nodes (in-flight calls re-submit)\n");
    }
    if (process->drops_completions()) {
      std::printf(
          "  drops completions: requires resilience=timeout-s>0 or the "
          "lost call would hang the run\n");
    }
    print_params(process->params());
    std::printf("\n");
  }

  std::printf(
      "Resilience knobs (one resilience= section per deployment, "
      "\"key=value&key=value\"; \"none\" disables recovery):\n\n");
  print_params(cluster::resilience_params());
  return 0;
}
