// Example: cluster right-sizing. The paper's operational claim (Sec. VIII)
// is that the FC scheduler lets an operator run the same peak load on 25%
// fewer machines without hurting the response-time statistics. This example
// sweeps the worker count for a fixed burst and prints, for each fleet
// size, the metrics under the baseline and under FC — so you can read off
// how many machines each system needs to meet a latency target.
//
// Usage: rightsizing [total_requests] [cpus_per_node]
#include <cstdio>
#include <cstdlib>

#include "experiments/campaign.h"
#include "util/stats.h"
#include "util/thread_pool.h"

using namespace whisk;

int main(int argc, char** argv) {
  const std::size_t total =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2376;
  const int cpus = argc > 2 ? std::atoi(argv[2]) : 18;

  const auto catalog = workload::sebs_catalog();
  std::printf(
      "Right-sizing sweep: %zu requests in a 60 s burst, %d-core workers\n\n",
      total, cpus);
  std::printf("%5s %-10s %10s %10s %10s %10s\n", "nodes", "scheduler",
              "avg R [s]", "p75 R [s]", "p95 R [s]", "p99 R [s]");

  // The whole sweep is one campaign: (scheduler x fleet size) x 3 seeds,
  // run across every core by the campaign pool.
  experiments::CampaignSpec grid;
  grid.schedulers = {experiments::SchedulerSpec::parse("baseline/fifo"),
                     experiments::SchedulerSpec::parse("ours/fc")};
  grid.scenarios = {workload::ScenarioSpec::parse(
      "fixed-total?total=" + std::to_string(total))};
  grid.nodes = {5, 4, 3, 2, 1};
  grid.cores = {cpus};
  grid.seeds = {0, 1, 2};
  experiments::CampaignOptions opts;
  opts.threads = util::ThreadPool::hardware_threads();
  const auto result = experiments::run_campaign(grid, catalog, opts);

  for (std::size_t n = 0; n < grid.nodes.size(); ++n) {
    for (std::size_t s = 0; s < grid.schedulers.size(); ++s) {
      const auto sum = util::summarize(experiments::pooled_responses(
          result.group(grid.group_index(s, 0, /*nodes_i=*/n))));
      std::printf("%5d %-10s %10.1f %10.1f %10.1f %10.1f\n", grid.nodes[n],
                  s == 0 ? "baseline" : "FC", sum.mean, sum.p75, sum.p95,
                  sum.p99);
    }
  }

  std::printf(
      "\nReading: find the smallest FC fleet whose row dominates the\n"
      "baseline fleet you run today. In the paper's setup FC on 3 nodes\n"
      "beats the baseline on 4 (a >=25%% fleet reduction).\n");
  return 0;
}
