// Example: cluster right-sizing as a cost/SLO frontier. The paper's
// operational claim (Sec. VIII) is that a better scheduler lets an operator
// run the same peak load on fewer machines without hurting the
// response-time statistics. This example extends that question to the
// autoscaling era: instead of asking "how many nodes do I need", it asks
// "what does each sizing strategy cost, and does it hold the SLO?"
//
// One campaign sweeps fixed fleets of 1..6 nodes against a closed-loop
// target-util autoscaler (start at 2, scale within [1, 6]) on the same
// burst, with a cost-per-hour on every node and an SLO of p99 < 15 s. The
// frontier table prints, per strategy: metered cost (node-seconds pro-rated
// over joins and drains), response statistics, SLO violations, and the
// autoscaler's activity — so you can read off which fixed fleet the
// autoscaler matches on latency and which it beats on cost.
//
// Usage: rightsizing [total_requests] [cpus_per_node]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/campaign.h"
#include "util/stats.h"
#include "util/thread_pool.h"

using namespace whisk;

namespace {

// $/node-hour and the SLO threshold every deployment in the sweep carries.
constexpr double kCostPerHour = 0.48;

std::string fixed_fleet(int nodes) {
  return "node:" + std::to_string(nodes) + "?cost-per-hour=0.48; " +
         "slo=p99<15";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t total =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 600;
  const int cpus = argc > 2 ? std::atoi(argv[2]) : 18;

  const auto catalog = workload::sebs_catalog();
  std::printf(
      "Cost/SLO frontier: %zu requests in a 60 s burst, %d-core workers,\n"
      "$%.2f per node-hour, SLO p99 < 15 s\n\n",
      total, cpus, kCostPerHour);

  // One campaign: the deployment axis carries five fixed fleets plus one
  // autoscaled fleet; every cell uses the FC scheduler and the same seeds,
  // so rows differ only in the sizing strategy.
  experiments::CampaignSpec grid;
  grid.schedulers = {experiments::SchedulerSpec::parse("ours/fc")};
  grid.scenarios = {workload::ScenarioSpec::parse(
      "fixed-total?total=" + std::to_string(total))};
  std::vector<std::string> labels;
  grid.clusters.clear();
  for (int n : {1, 2, 3, 4, 6}) {
    grid.clusters.push_back(cluster::ClusterSpec::parse(fixed_fleet(n)));
    labels.push_back("fixed x" + std::to_string(n));
  }
  grid.clusters.push_back(cluster::ClusterSpec::parse(
      "node:2?cost-per-hour=0.48&min-nodes=1&max-nodes=6; "
      "autoscaler=target-util?low=0.25&high=0.7&tick-s=1&cooldown-s=1; "
      "slo=p99<15"));
  labels.push_back("target-util 1..6");
  grid.cores = {cpus};
  grid.seeds = {0, 1, 2};
  experiments::CampaignOptions opts;
  opts.threads = util::ThreadPool::hardware_threads();
  const auto result = experiments::run_campaign(grid, catalog, opts);

  std::printf("%-17s %9s %9s %8s %8s %8s %7s %11s\n", "strategy",
              "node-hrs", "cost [$]", "avg R", "p95 R", "p99 R", "SLO ok",
              "up/down");
  for (std::size_t c = 0; c < grid.clusters.size(); ++c) {
    const auto cells =
        result.group(grid.group_index(0, 0, 0, 0, 0, /*cluster_i=*/c));
    const auto sum = util::summarize(experiments::pooled_responses(cells));
    double node_hours = 0.0;
    double cost = 0.0;
    std::size_t violations = 0;
    std::size_t calls = 0;
    std::size_t ups = 0;
    std::size_t downs = 0;
    for (const auto& cell : cells) {
      node_hours += cell.node_hours;
      cost += cell.cost_usd;
      violations += cell.slo_violations;
      calls += cell.calls;
      ups += cell.scale_ups;
      downs += cell.scale_downs;
    }
    const double seeds = static_cast<double>(cells.size());
    std::printf("%-17s %9.3f %9.4f %8.1f %8.1f %8.1f %6.1f%% %6zu/%zu\n",
                labels[c].c_str(), node_hours / seeds, cost / seeds,
                sum.mean, sum.p95, sum.p99,
                100.0 * static_cast<double>(calls - violations) /
                    static_cast<double>(calls),
                ups, downs);
  }

  std::printf(
      "\nReading: walk down the fixed rows until the SLO holds — that is\n"
      "the fleet you would provision statically, and its cost is the\n"
      "static frontier. The autoscaled row rides the burst instead: it\n"
      "joins nodes while the backlog grows, drains them as it clears, and\n"
      "lands near the latency of the compliant fixed fleet at a metered\n"
      "cost near the smaller ones.\n");
  return 0;
}
