// Example: anatomy of an overload burst. Runs one seeded experiment under
// a chosen policy and prints a per-function breakdown (who waits, who
// executes, who gets discriminated against) plus a 5-second timeline of the
// node's backlog drain.
//
// Usage: overload_burst [policy] [intensity]
//   policy    fifo | sept | eect | rect | fc | baseline   (default sept)
//   intensity multiple of 10                              (default 60)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "experiments/runner.h"
#include "util/stats.h"

using namespace whisk;

int main(int argc, char** argv) {
  const std::string policy = argc > 1 ? argv[1] : "sept";
  const int intensity = argc > 2 ? std::atoi(argv[2]) : 60;

  const auto catalog = workload::sebs_catalog();
  const auto cfg =
      experiments::ExperimentSpec()
          .cores(10)
          .intensity(intensity)
          .seed(3)
          .scheduler(policy == "baseline" ? "baseline/fifo"
                                          : "ours/" + policy);

  const auto run = experiments::run_experiment(cfg, catalog);
  std::printf("policy=%s, 10 cores, intensity %d: %zu calls, %zu cold "
              "starts, %zu evictions\n\n",
              policy.c_str(), intensity, run.records.size(),
              run.stats.cold_starts, run.stats.evictions);

  std::printf("%-18s %5s %10s %10s %10s %10s\n", "function", "calls",
              "avg wait", "avg exec", "avg R [s]", "avg S");
  for (const auto& spec : catalog.specs()) {
    double wait = 0.0, exec = 0.0, resp = 0.0;
    int n = 0;
    for (const auto& rec : run.records) {
      if (rec.function != spec.id) continue;
      wait += rec.queue_wait();
      exec += rec.exec_end - rec.exec_start;
      resp += rec.response();
      ++n;
    }
    if (n == 0) continue;
    const double ref = catalog.reference_median(spec.id);
    std::printf("%-18s %5d %10.2f %10.2f %10.2f %10.1f\n",
                spec.name.c_str(), n, wait / n, exec / n, resp / n,
                resp / n / ref);
  }

  // Completion timeline: how the backlog drains after the 60 s window.
  std::printf("\ncompletions per 5 s bucket (burst ends at t=60):\n");
  double horizon = 0.0;
  for (const auto& rec : run.records) {
    horizon = std::max(horizon, rec.completion);
  }
  for (double t = 0.0; t < horizon; t += 5.0) {
    int done = 0;
    for (const auto& rec : run.records) {
      if (rec.completion >= t && rec.completion < t + 5.0) ++done;
    }
    std::printf("  t=%6.0f..%-6.0f %4d |%s\n", t, t + 5.0, done,
                std::string(static_cast<std::size_t>(done / 2), '#').c_str());
  }
  return 0;
}
