// Example: bring your own workload. Shows how to define a custom function
// catalog (instead of the SeBS one), generate a custom scenario, and run it
// through the cluster directly — the lowest-level public API.
//
// The scenario: a latency-sensitive "api-gateway" function sharing a node
// with a heavy "nightly-report" batch function, under every policy.
#include <cstdio>

#include "cluster/cluster.h"
#include "sim/engine.h"
#include "util/stats.h"

using namespace whisk;

int main() {
  // A two-function catalog: percentiles are client-side milliseconds as in
  // the paper's Table I (p5 / median / p95), then the CPU-bound fraction
  // and the container memory in MB.
  workload::FunctionCatalog catalog({
      {workload::kInvalidFunction, "api-gateway", 14.0, 18.0, 30.0, 0.7,
       160.0},
      {workload::kInvalidFunction, "nightly-report", 5200.0, 6000.0, 7400.0,
       0.95, 160.0},
  });
  const auto api = catalog.find("api-gateway").value();
  const auto report = catalog.find("nightly-report").value();

  std::printf("%-10s | %-12s %10s %10s | %-14s %10s\n", "policy",
              "api-gateway", "avg R [s]", "p99 R [s]", "nightly-report",
              "avg R [s]");

  for (const auto kind : core::all_policies()) {
    sim::Engine engine;
    cluster::ClusterParams params;
    params.approach = cluster::Approach::kOurs;
    params.policy = kind;
    params.node.cores = 2;

    cluster::Cluster cluster(engine, catalog, params, /*seed=*/11);
    cluster.warmup();

    // Hand-built burst heavy enough to overload the 2-core node: 600
    // gateway calls plus 25 reports in 60 seconds.
    workload::Scenario scenario;
    sim::Rng rng(5);
    for (int i = 0; i < 600; ++i) {
      scenario.calls.push_back(
          workload::CallRequest{i, api, rng.uniform(0.0, 60.0)});
    }
    for (int i = 0; i < 25; ++i) {
      scenario.calls.push_back(
          workload::CallRequest{600 + i, report, rng.uniform(0.0, 60.0)});
    }
    cluster.run_scenario(scenario);
    engine.run();

    const auto& col = cluster.collector();
    const auto api_r = util::summarize(col.response_times_of(api));
    const auto rep_r = util::summarize(col.response_times_of(report));
    std::printf("%-10s | %-12s %10.2f %10.2f | %-14s %10.2f\n",
                std::string(core::to_string(kind)).c_str(), "", api_r.mean,
                api_r.p99, "", rep_r.mean);
  }

  std::printf(
      "\nSEPT keeps the gateway snappy but starves the report; FC balances\n"
      "both (the paper's fairness argument, Sec. VII-D).\n");
  return 0;
}
