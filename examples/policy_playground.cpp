// Example: the open scheduler surface. Shows the three extension points of
// the registry API, everything selected purely by string name:
//
//   1. every *registered* policy — the paper's five plus the sjf-aging
//      policy that was added through core::PolicyRegistry — runs a custom
//      two-function workload;
//   2. a brand-new policy is registered at runtime (no core/ edits, no
//      enum, no recompile of the library) and immediately joins the sweep;
//   3. the registered balancers — including the weighted-least-loaded and
//      join-idle-queue additions — spread the same burst over a 4-node
//      fleet.
#include <cstdio>
#include <memory>

#include "cluster/balancer_registry.h"
#include "cluster/cluster.h"
#include "core/policy_registry.h"
#include "sim/engine.h"
#include "util/stats.h"

using namespace whisk;

namespace {

// A two-function catalog: percentiles are client-side milliseconds as in
// the paper's Table I (p5 / median / p95), then the CPU-bound fraction
// and the container memory in MB.
workload::FunctionCatalog make_catalog() {
  return workload::FunctionCatalog({
      {workload::kInvalidFunction, "api-gateway", 14.0, 18.0, 30.0, 0.7,
       160.0},
      {workload::kInvalidFunction, "nightly-report", 5200.0, 6000.0, 7400.0,
       0.95, 160.0},
  });
}

// The runtime-registered policy of step 2: absolute priority to the
// latency-sensitive gateway, batch work whenever a core is free.
class GatewayFirstPolicy final : public core::Policy {
 public:
  explicit GatewayFirstPolicy(workload::FunctionId gateway)
      : gateway_(gateway) {}
  double priority(const core::PolicyContext& ctx) const override {
    return ctx.function == gateway_ ? ctx.received
                                    : 1.0e9 + ctx.received;
  }
  std::string_view name() const override { return "gateway-first"; }
  bool starvation_free() const override { return false; }

 private:
  workload::FunctionId gateway_;
};

workload::Scenario make_burst(workload::FunctionId api,
                              workload::FunctionId report, int api_calls,
                              int report_calls) {
  workload::Scenario scenario;
  sim::Rng rng(5);
  for (int i = 0; i < api_calls; ++i) {
    scenario.calls.push_back(
        workload::CallRequest{i, api, rng.uniform(0.0, 60.0)});
  }
  for (int i = 0; i < report_calls; ++i) {
    scenario.calls.push_back(
        workload::CallRequest{api_calls + i, report,
                              rng.uniform(0.0, 60.0)});
  }
  return scenario;
}

void run_policy_sweep(const workload::FunctionCatalog& catalog) {
  const auto api = catalog.find("api-gateway").value();
  const auto report = catalog.find("nightly-report").value();

  std::printf("%-14s | %-12s %10s %10s | %-14s %10s\n", "policy",
              "api-gateway", "avg R [s]", "p99 R [s]", "nightly-report",
              "avg R [s]");

  for (const auto& name : core::PolicyRegistry::instance().names()) {
    sim::Engine engine;
    cluster::ClusterParams params;
    params.invoker = "ours";
    params.policy = name;  // <- the whole selection surface
    params.node.cores = 2;

    cluster::Cluster cluster(engine, catalog, params, /*seed=*/11);
    cluster.warmup();

    // Hand-built burst heavy enough to overload the 2-core node: 600
    // gateway calls plus 25 reports in 60 seconds.
    cluster.run_scenario(make_burst(api, report, 600, 25));
    engine.run();

    const auto& col = cluster.collector();
    const auto api_r = util::summarize(col.response_times_of(api));
    const auto rep_r = util::summarize(col.response_times_of(report));
    std::printf("%-14s | %-12s %10.2f %10.2f | %-14s %10.2f\n", name.c_str(),
                "", api_r.mean, api_r.p99, "", rep_r.mean);
  }
}

void run_balancer_sweep(const workload::FunctionCatalog& catalog) {
  const auto api = catalog.find("api-gateway").value();
  const auto report = catalog.find("nightly-report").value();

  std::printf("\n4-node fleet, same burst, policy sept, by balancer:\n");
  std::printf("%-22s %10s %10s %10s\n", "balancer", "avg R [s]", "p95 R [s]",
              "max c [s]");
  for (const auto& name : cluster::BalancerRegistry::instance().names()) {
    sim::Engine engine;
    cluster::ClusterParams params;
    params.policy = "sept";
    params.balancer = name;  // <- string-selected, including the new ones
    params.deployment = cluster::ClusterSpec::homogeneous(4);
    params.node.cores = 2;

    cluster::Cluster cluster(engine, catalog, params, /*seed=*/11);
    cluster.warmup();
    cluster.run_scenario(make_burst(api, report, 600, 25));
    engine.run();

    const auto r = util::summarize(cluster.collector().response_times());
    std::printf("%-22s %10.2f %10.2f %10.2f\n", name.c_str(), r.mean, r.p95,
                cluster.collector().max_completion());
  }
}

}  // namespace

int main() {
  const auto catalog = make_catalog();

  // Step 2: extend the policy set at runtime, before the sweep below picks
  // it up by name like any built-in.
  const auto api = catalog.find("api-gateway").value();
  core::PolicyRegistry::instance().register_factory(
      "gateway-first", [api](const core::PolicyParams&) {
        return std::make_unique<GatewayFirstPolicy>(api);
      });

  run_policy_sweep(catalog);
  run_balancer_sweep(catalog);

  std::printf(
      "\nSEPT keeps the gateway snappy but starves the report; FC balances\n"
      "both (the paper's fairness argument, Sec. VII-D); sjf-aging sits\n"
      "between SEPT and EECT; gateway-first was registered by this example\n"
      "at runtime.\n");
  return 0;
}
