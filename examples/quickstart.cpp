// Quickstart: simulate one overloaded FaaS worker node and compare the
// stock OpenWhisk invoker with the paper's SEPT policy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "experiments/runner.h"
#include "util/stats.h"

using namespace whisk;

int main() {
  // The 11 SeBS functions of the paper's Table I.
  const auto catalog = workload::sebs_catalog();

  // One worker with 10 cores for action containers, hit by a 60-second
  // burst at intensity 40 (1.1 * 10 * 40 = 440 requests).
  auto cfg = experiments::ExperimentSpec().cores(10).intensity(40).seed(1);

  std::printf("One 10-core node, 440 requests in a 60 s burst:\n\n");
  std::printf("%-10s %10s %10s %10s %12s %6s\n", "scheduler", "avg R [s]",
              "p50 R [s]", "p95 R [s]", "avg stretch", "cold");

  for (const auto& sched : experiments::paper_schedulers()) {
    cfg.scheduler(sched);
    const auto run = experiments::run_experiment(cfg, catalog);
    const auto r = util::summarize(run.responses);
    const auto s = util::summarize(run.stretches);
    std::printf("%-10s %10.2f %10.2f %10.2f %12.1f %6zu\n",
                sched.label().c_str(), r.mean, r.p50, r.p95, s.mean,
                run.stats.cold_starts);
  }

  std::printf(
      "\nSEPT/FC should cut the average response several-fold versus the\n"
      "baseline and our FIFO — the paper's headline single-node result.\n");
  return 0;
}
